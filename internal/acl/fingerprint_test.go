package acl

import "testing"

func TestFingerprintAgreesWithEqual(t *testing.T) {
	programs := []string{
		"permit all",
		"deny all",
		"deny dst 6.0.0.0/8, permit all",
		"deny dst 6.0.0.0/8, deny all",
		"permit dst 6.0.0.0/8, deny all",
		"deny dst 6.0.0.0/8, deny dst 7.0.0.0/8, permit all",
		"deny dst 7.0.0.0/8, deny dst 6.0.0.0/8, permit all",
		"deny src 10.0.0.0/24 dst 6.0.0.0/8 dport 80, permit all",
		"deny src 10.0.0.0/24 dst 6.0.0.0/8 dport 81, permit all",
		"deny proto 6, permit all",
		"deny proto 17, permit all",
	}
	acls := make([]*ACL, len(programs))
	for i, p := range programs {
		acls[i] = MustParse(p)
	}
	for i, a := range acls {
		for j, b := range acls {
			eq := a.Equal(b)
			fpEq := a.Fingerprint() == b.Fingerprint()
			if eq && !fpEq {
				t.Errorf("equal ACLs %d/%d have different fingerprints:\n  %s\n  %s", i, j, a, b)
			}
			if !eq && fpEq {
				t.Errorf("fingerprint collision between distinct ACLs %d/%d:\n  %s\n  %s", i, j, a, b)
			}
		}
	}
}

func TestFingerprintStableAcrossClone(t *testing.T) {
	a := MustParse("deny dst 1.0.0.0/8, deny src 2.0.0.0/16 sport 1024-2048, permit all")
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone changed the fingerprint")
	}
}

// TestFingerprintSensitivity pins the properties the core verdict cache
// keys on: any semantic-relevant mutation — rule reorder, mask change,
// action flip, default flip, rule insertion — must change the
// fingerprint, while cloning or re-parsing the same text must not.
func TestFingerprintSensitivity(t *testing.T) {
	base := MustParse("deny dst 1.0.0.0/8, permit src 10.0.0.0/24 dport 80, deny proto 6, permit all")
	fp := base.Fingerprint()

	if got := MustParse("deny dst 1.0.0.0/8, permit src 10.0.0.0/24 dport 80, deny proto 6, permit all").Fingerprint(); got != fp {
		t.Fatal("re-parsing identical text changed the fingerprint")
	}
	if got := base.Clone().Fingerprint(); got != fp {
		t.Fatal("cloning changed the fingerprint")
	}

	mutate := func(name string, f func(a *ACL)) {
		m := base.Clone()
		f(m)
		if m.Fingerprint() == fp {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	mutate("rule reorder", func(a *ACL) {
		a.Rules[0], a.Rules[1] = a.Rules[1], a.Rules[0]
	})
	mutate("mask change", func(a *ACL) {
		a.Rules[0].Match.Dst.Len = 9
	})
	mutate("address change", func(a *ACL) {
		a.Rules[0].Match.Dst.Addr ^= 1 << 24
	})
	mutate("action flip", func(a *ACL) {
		a.Rules[2].Action = !a.Rules[2].Action
	})
	mutate("default flip", func(a *ACL) {
		a.Default = !a.Default
	})
	mutate("port change", func(a *ACL) {
		a.Rules[1].Match.DstPort.Hi = 81
	})
	mutate("proto change", func(a *ACL) {
		a.Rules[2].Match.Proto.Lo++
	})
	mutate("rule inserted", func(a *ACL) {
		a.Rules = append(a.Rules, Rule{Action: Deny, Match: a.Rules[0].Match})
	})
	mutate("rule deleted", func(a *ACL) {
		a.Rules = a.Rules[:len(a.Rules)-1]
	})
}

package acl

import "testing"

func TestFingerprintAgreesWithEqual(t *testing.T) {
	programs := []string{
		"permit all",
		"deny all",
		"deny dst 6.0.0.0/8, permit all",
		"deny dst 6.0.0.0/8, deny all",
		"permit dst 6.0.0.0/8, deny all",
		"deny dst 6.0.0.0/8, deny dst 7.0.0.0/8, permit all",
		"deny dst 7.0.0.0/8, deny dst 6.0.0.0/8, permit all",
		"deny src 10.0.0.0/24 dst 6.0.0.0/8 dport 80, permit all",
		"deny src 10.0.0.0/24 dst 6.0.0.0/8 dport 81, permit all",
		"deny proto 6, permit all",
		"deny proto 17, permit all",
	}
	acls := make([]*ACL, len(programs))
	for i, p := range programs {
		acls[i] = MustParse(p)
	}
	for i, a := range acls {
		for j, b := range acls {
			eq := a.Equal(b)
			fpEq := a.Fingerprint() == b.Fingerprint()
			if eq && !fpEq {
				t.Errorf("equal ACLs %d/%d have different fingerprints:\n  %s\n  %s", i, j, a, b)
			}
			if !eq && fpEq {
				t.Errorf("fingerprint collision between distinct ACLs %d/%d:\n  %s\n  %s", i, j, a, b)
			}
		}
	}
}

func TestFingerprintStableAcrossClone(t *testing.T) {
	a := MustParse("deny dst 1.0.0.0/8, deny src 2.0.0.0/16 sport 1024-2048, permit all")
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone changed the fingerprint")
	}
}

package acl

import (
	"math/rand"
	"testing"
)

// TestNormalizePreservesSemantics: Normalize must keep the decision
// model intact — it only drops redundant rules and reorders disjoint
// neighbors — checked against the SMT-backed equivalence oracle.
func TestNormalizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 150; i++ {
		a := randomACL(r, 1+r.Intn(8))
		n := Normalize(a)
		if !Equivalent(a, n) {
			t.Fatalf("Normalize changed semantics:\n  in:  %s\n  out: %s", a, n)
		}
		// Idempotent: normalizing a normal form is a fixpoint.
		if !n.Equal(Normalize(n)) {
			t.Fatalf("Normalize not idempotent on %s", n)
		}
	}
}

// TestNormalizeCanonicalizesReorderings: swapping disjoint adjacent
// rules must normalize to the same form, so TriviallyEquivalent
// discharges the reorder without a solver.
func TestNormalizeCanonicalizesReorderings(t *testing.T) {
	a := MustParse("deny dst 1.0.0.0/8, permit dst 2.0.0.0/8 dport 80, deny dst 3.0.0.0/8, permit all")
	b := MustParse("deny dst 3.0.0.0/8, deny dst 1.0.0.0/8, permit dst 2.0.0.0/8 dport 80, permit all")
	if !TriviallyEquivalent(a, b) {
		t.Fatalf("disjoint reorder not discharged:\n  %s\n  %s", a, b)
	}
	// Overlapping rules must NOT commute.
	c := MustParse("deny dst 1.0.0.0/8, permit dst 1.0.0.0/9, permit all")
	d := MustParse("permit dst 1.0.0.0/9, deny dst 1.0.0.0/8, permit all")
	if TriviallyEquivalent(c, d) {
		t.Fatalf("overlapping reorder wrongly discharged:\n  %s\n  %s", c, d)
	}
}

// TestTriviallyEquivalentSound is the randomized soundness property:
// whenever the SAT-free pre-filter says two ACLs are equivalent, the
// SMT oracle must agree. (The converse need not hold — the pre-filter
// is deliberately incomplete.)
func TestTriviallyEquivalentSound(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 80
	}
	r := rand.New(rand.NewSource(271))
	discharged, equivalent := 0, 0
	for i := 0; i < iters; i++ {
		a := randomACL(r, 1+r.Intn(8))
		var b *ACL
		switch r.Intn(4) {
		case 0:
			b = a.Clone()
		case 1:
			b = Normalize(a)
		case 2:
			// Swap one adjacent pair — sometimes disjoint, sometimes not.
			b = a.Clone()
			if len(b.Rules) > 1 {
				k := r.Intn(len(b.Rules) - 1)
				b.Rules[k], b.Rules[k+1] = b.Rules[k+1], b.Rules[k]
			}
		default:
			b = perturb(r, a)
		}
		if Equivalent(a, b) {
			equivalent++
		}
		if TriviallyEquivalent(a, b) {
			discharged++
			if !Equivalent(a, b) {
				t.Fatalf("unsound discharge:\n  a: %s\n  b: %s", a, b)
			}
		}
	}
	if discharged == 0 {
		t.Fatal("pre-filter never discharged; generator too adversarial or filter broken")
	}
	t.Logf("%d iters: %d equivalent, %d discharged by the pre-filter", iters, equivalent, discharged)
}

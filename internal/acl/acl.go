// Package acl models in-network Access Control Lists: ordered lists of
// permit/deny rules with first-match semantics (§2.1 of the paper), their
// boolean decision models f_ξ(h), and the rule-set manipulations Jinjing's
// primitives depend on — differential rules (Definition 4.1), related-rule
// filtering (Definition 4.2 / Theorem 4.1), redundant-rule simplification,
// and equivalence checking.
package acl

import (
	"fmt"
	"strings"

	"jinjing/internal/header"
	"jinjing/internal/smt"
)

// Action is an ACL rule decision.
type Action bool

// The two rule actions.
const (
	Permit Action = true
	Deny   Action = false
)

// String renders the action in rule syntax.
func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// Rule is one ACL entry: a 5-tuple match plus an action.
type Rule struct {
	Action Action
	Match  header.Match
}

// String renders the rule in the textual syntax, e.g. "deny dst 1.0.0.0/8".
func (r Rule) String() string {
	return r.Action.String() + " " + r.Match.String()
}

// ACL is a sequential list of rules evaluated top to bottom, with a
// default action when no rule matches. The paper's examples use
// "permit all" as the last rule of every ACL; here that final
// catch-all is the Default field (an explicit trailing "permit all" rule
// parses into it).
type ACL struct {
	Rules   []Rule
	Default Action
}

// PermitAll is an ACL that permits every packet — the state `modify ... to
// permit-all` leaves an interface in.
func PermitAll() *ACL { return &ACL{Default: Permit} }

// Clone returns a deep copy of the ACL.
func (a *ACL) Clone() *ACL {
	out := &ACL{Default: a.Default}
	out.Rules = append([]Rule(nil), a.Rules...)
	return out
}

// Decide returns the ACL's decision on packet p: the action of the first
// matching rule, or the default. This is the decision model f_ξ(h)
// interpreted concretely.
func (a *ACL) Decide(p header.Packet) Action {
	for _, r := range a.Rules {
		if r.Match.Matches(p) {
			return r.Action
		}
	}
	return a.Default
}

// Permits reports whether the ACL permits p (f_ξ(h) = TRUE).
func (a *ACL) Permits(p header.Packet) bool { return a.Decide(p) == Permit }

// DecideMatch returns the ACL's decision on an entire traffic class m,
// provided the class is "atomic" with respect to this ACL (every rule
// either contains m or is disjoint from it); ok is false otherwise.
func (a *ACL) DecideMatch(m header.Match) (Action, bool) {
	for _, r := range a.Rules {
		switch {
		case r.Match.Contains(m):
			return r.Action, true
		case r.Match.Overlaps(m):
			return false, false // class straddles the rule boundary
		}
	}
	return a.Default, true
}

// HitIndices returns the (0-based) indices of the rules a packet in class
// m could hit first, including len(Rules) for the default when some
// packet in m falls through every rule. This is the "which rule can be
// hit" computation of ACL-synthesis Step 1 (§5.4). remain tracks whether
// any packet of m can still be unmatched; for prefix/range classes this
// over-approximates conservatively using containment.
func (a *ACL) HitIndices(m header.Match) []int {
	var out []int
	remaining := true // can some packet of m still reach this point?
	for i, r := range a.Rules {
		if !remaining {
			break
		}
		if r.Match.Overlaps(m) {
			out = append(out, i)
			if r.Match.Contains(m) {
				remaining = false
			}
		}
	}
	if remaining {
		out = append(out, len(a.Rules))
	}
	return out
}

// IsPermitAll reports whether the ACL permits every packet syntactically
// (no rules that could deny before a permit default, checked exactly via
// decision-model equivalence would need SMT; this is the common literal
// case).
func (a *ACL) IsPermitAll() bool {
	if a.Default != Permit {
		return false
	}
	for _, r := range a.Rules {
		if r.Action != Permit {
			return false
		}
	}
	return true
}

// Equal reports structural (rule-for-rule) equality.
func (a *ACL) Equal(b *ACL) bool {
	if a.Default != b.Default || len(a.Rules) != len(b.Rules) {
		return false
	}
	for i := range a.Rules {
		if a.Rules[i].Action != b.Rules[i].Action || !a.Rules[i].Match.Equal(b.Rules[i].Match) {
			return false
		}
	}
	return true
}

// Fingerprint returns a canonical 64-bit structural hash of the ACL:
// FNV-1a over the default action and every rule's action and raw match
// fields. Equal ACLs (per Equal, which is field-wise) always hash the
// same, so the engine's encoding cache can recognize structurally
// identical ACLs reached through different pointers — e.g. the cloned
// but unchanged bindings of an update — and encode them once.
// Collisions are possible and must be resolved with Equal.
func (a *ACL) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	if a.Default == Permit {
		mix(1)
	} else {
		mix(2)
	}
	mix(uint64(len(a.Rules)))
	for _, r := range a.Rules {
		if r.Action == Permit {
			mix(3)
		} else {
			mix(4)
		}
		m := r.Match
		mix(uint64(m.Src.Addr)<<8 | uint64(uint8(m.Src.Len)))
		mix(uint64(m.Dst.Addr)<<8 | uint64(uint8(m.Dst.Len)))
		mix(uint64(m.SrcPort.Lo)<<16 | uint64(m.SrcPort.Hi))
		mix(uint64(m.DstPort.Lo)<<16 | uint64(m.DstPort.Hi))
		mix(uint64(m.Proto.Lo)<<8 | uint64(m.Proto.Hi))
	}
	return h
}

// String renders the ACL as comma-separated rules ending with the default,
// mirroring the paper's notation, e.g.
// "deny dst 6.0.0.0/8, permit all".
func (a *ACL) String() string {
	parts := make([]string, 0, len(a.Rules)+1)
	for _, r := range a.Rules {
		parts = append(parts, r.String())
	}
	parts = append(parts, a.Default.String()+" all")
	return strings.Join(parts, ", ")
}

// Len returns the number of explicit rules.
func (a *ACL) Len() int { return len(a.Rules) }

// Parse parses the textual ACL syntax: rules separated by commas,
// semicolons, or newlines. Each rule is
//
//	(permit|deny) [src <prefix>] [dst <prefix>] [sport <range>]
//	              [dport <range>] [proto <proto>] | (permit|deny) all
//
// A trailing "<action> all" rule sets the default action. An empty input
// yields a permit-all ACL (matching the common default in the paper's
// network).
func Parse(text string) (*ACL, error) {
	a := &ACL{Default: Permit}
	type entry struct {
		rule  Rule
		isAll bool
	}
	var entries []entry
	split := func(r rune) bool { return r == ',' || r == ';' || r == '\n' }
	for _, line := range strings.FieldsFunc(text, split) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, isAll, err := parseRule(line)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{rule: r, isAll: isAll})
	}
	// A trailing "<action> all" is the default; catch-alls elsewhere are
	// ordinary rules (synthesis legitimately emits them mid-list).
	if n := len(entries); n > 0 && entries[n-1].isAll {
		a.Default = entries[n-1].rule.Action
		entries = entries[:n-1]
	}
	for _, e := range entries {
		r := e.rule
		if e.isAll {
			r.Match = header.MatchAll
		}
		a.Rules = append(a.Rules, r)
	}
	return a, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(text string) *ACL {
	a, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return a
}

func parseRule(line string) (Rule, bool, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Rule{}, false, fmt.Errorf("acl: empty rule")
	}
	var act Action
	switch fields[0] {
	case "permit":
		act = Permit
	case "deny":
		act = Deny
	default:
		return Rule{}, false, fmt.Errorf("acl: rule must start with permit/deny: %q", line)
	}
	rest := fields[1:]
	if len(rest) == 1 && (rest[0] == "all" || rest[0] == "any") {
		return Rule{Action: act, Match: header.MatchAll}, true, nil
	}
	m := header.MatchAll
	if len(rest) == 0 || len(rest)%2 != 0 {
		return Rule{}, false, fmt.Errorf("acl: malformed rule %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		key, val := rest[i], rest[i+1]
		var err error
		switch key {
		case "src":
			m.Src, err = header.ParsePrefix(val)
		case "dst":
			m.Dst, err = header.ParsePrefix(val)
		case "sport":
			m.SrcPort, err = header.ParsePortRange(val)
		case "dport":
			m.DstPort, err = header.ParsePortRange(val)
		case "proto":
			m.Proto, err = header.ParseProto(val)
		default:
			return Rule{}, false, fmt.Errorf("acl: unknown field %q in rule %q", key, line)
		}
		if err != nil {
			return Rule{}, false, fmt.Errorf("acl: in rule %q: %v", line, err)
		}
	}
	return Rule{Action: act, Match: m}, false, nil
}

// EncodeSeq builds the sequential (priority-order) decision model of the
// ACL over symbolic packet pv: a right fold of if-then-else over the rule
// list, exactly the O(n)-depth encoding §4.1 starts from.
func (a *ACL) EncodeSeq(b *smt.Builder, pv *smt.PacketVars) smt.F {
	out := b.Const(bool(a.Default))
	for i := len(a.Rules) - 1; i >= 0; i-- {
		r := a.Rules[i]
		out = b.Ite(b.MatchPred(pv, r.Match), b.Const(bool(r.Action)), out)
	}
	return out
}

// EncodeTournament builds the tournament-tree decision model (§4.1 "ACL
// decision model optimization"): rules are combined pairwise like a
// tournament sort, producing an O(log n)-depth circuit. For a segment of
// rules we track the pair (hit, val): whether any rule in the segment
// matches, and the decision of the first matching rule.
func (a *ACL) EncodeTournament(b *smt.Builder, pv *smt.PacketVars) smt.F {
	hit, val := a.encodeSegment(b, pv, 0, len(a.Rules))
	return b.Ite(hit, val, b.Const(bool(a.Default)))
}

func (a *ACL) encodeSegment(b *smt.Builder, pv *smt.PacketVars, lo, hi int) (hit, val smt.F) {
	switch hi - lo {
	case 0:
		return smt.False, smt.False
	case 1:
		r := a.Rules[lo]
		return b.MatchPred(pv, r.Match), b.Const(bool(r.Action))
	}
	mid := (lo + hi) / 2
	hl, vl := a.encodeSegment(b, pv, lo, mid)
	hr, vr := a.encodeSegment(b, pv, mid, hi)
	return b.Or(hl, hr), b.Ite(hl, vl, vr)
}

// Encode is the default encoding used by the engine (tournament).
func (a *ACL) Encode(b *smt.Builder, pv *smt.PacketVars) smt.F {
	return a.EncodeTournament(b, pv)
}

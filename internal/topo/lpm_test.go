package topo_test

import (
	"math/rand"
	"testing"

	"jinjing/internal/header"
	"jinjing/internal/topo"
)

// linearLPM is a brute-force reference for LongestMatch.
func linearLPM(fib []topo.FIBEntry, addr uint32) []*topo.Interface {
	best := -1
	var outs []*topo.Interface
	for _, e := range fib {
		if !e.Prefix.Matches(addr) {
			continue
		}
		switch {
		case e.Prefix.Len > best:
			best = e.Prefix.Len
			outs = []*topo.Interface{e.Out}
		case e.Prefix.Len == best:
			outs = append(outs, e.Out)
		}
	}
	return outs
}

func TestLPMTrieAgainstLinearReference(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for iter := 0; iter < 50; iter++ {
		n := topo.NewNetwork()
		d := n.Device("R")
		var ifaces []*topo.Interface
		for i := 0; i < 4; i++ {
			ifaces = append(ifaces, d.Interface(string(rune('a'+i))))
		}
		routes := 1 + r.Intn(40)
		for i := 0; i < routes; i++ {
			p := header.Prefix{
				Addr: uint32(r.Intn(8)) << 28,
				Len:  []int{0, 4, 8, 12, 16, 24, 32}[r.Intn(7)],
			}
			p.Addr |= r.Uint32() >> 4 // noise in lower bits
			p = p.Canonical()
			d.AddRoute(p, ifaces[r.Intn(len(ifaces))])
		}
		for j := 0; j < 200; j++ {
			addr := r.Uint32()
			got := d.LongestMatch(addr)
			want := linearLPM(d.FIB, addr)
			if len(got) != len(want) {
				t.Fatalf("iter %d addr %x: trie %v vs linear %v", iter, addr, got, want)
			}
			gotSet := map[*topo.Interface]int{}
			for _, o := range got {
				gotSet[o]++
			}
			for _, o := range want {
				if gotSet[o] == 0 {
					t.Fatalf("iter %d addr %x: missing %v", iter, addr, o.ID())
				}
				gotSet[o]--
			}
		}
	}
}

func TestLPMClassCacheInvalidation(t *testing.T) {
	n := topo.NewNetwork()
	d := n.Device("R")
	i1, i2 := d.Interface("1"), d.Interface("2")
	p := header.MustParsePrefix("1.2.0.0/16")
	d.AddRoute(p, i1)
	if got := d.LongestMatchClass(p); len(got) != 1 || got[0] != i1 {
		t.Fatalf("first lookup: %v", got)
	}
	// Adding a more specific route must invalidate the memo — the class
	// is no longer atomic and the lookup must now panic.
	d.AddRoute(header.MustParsePrefix("1.2.3.0/24"), i2)
	defer func() {
		if recover() == nil {
			t.Fatal("stale cache: expected atomicity panic after route insertion")
		}
	}()
	d.LongestMatchClass(p)
}

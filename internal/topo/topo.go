// Package topo models the network Jinjing operates on: devices with
// named interfaces, ingress/egress ACL bindings, directed links,
// per-device forwarding tables (the g_{i,j} forwarding models of §4.1),
// management scopes Ω with border interfaces, structural path
// enumeration over the routing DAG, and forwarding equivalence classes.
package topo

import (
	"fmt"
	"sort"
	"strings"

	"jinjing/internal/acl"
	"jinjing/internal/header"
)

// Direction distinguishes the two ACL attachment points of an interface
// (§2.1: "ACLs can be applied to both ingress and egress interfaces").
type Direction int

// The two ACL directions.
const (
	In Direction = iota
	Out
)

// String renders the direction as "in"/"out".
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Interface is one interface of a device. Either direction may carry an
// ACL; a nil ACL permits everything (the implicit permit-all of an
// unconfigured interface).
type Interface struct {
	Device *Device
	Name   string
	ACLs   [2]*acl.ACL // indexed by Direction; nil = no ACL
}

// ID returns the "device:interface" form used by LAI.
func (i *Interface) ID() string { return i.Device.Name + ":" + i.Name }

// ACL returns the ACL bound in the given direction, or nil.
func (i *Interface) ACL(d Direction) *acl.ACL { return i.ACLs[d] }

// SetACL binds an ACL in the given direction (nil clears it).
func (i *Interface) SetACL(d Direction, a *acl.ACL) { i.ACLs[d] = a }

// Permits reports the decision of the interface's ACL in direction d on
// packet p; an unbound direction permits.
func (i *Interface) Permits(d Direction, p header.Packet) bool {
	if i.ACLs[d] == nil {
		return true
	}
	return i.ACLs[d].Permits(p)
}

// FIBEntry is one forwarding entry: destinations under Prefix leave the
// device through Out.
type FIBEntry struct {
	Prefix header.Prefix
	Out    *Interface
}

// Device is a router: a set of named interfaces plus a destination-based
// forwarding table.
type Device struct {
	Name       string
	Interfaces map[string]*Interface
	FIB        []FIBEntry

	lpm        *lpmNode                       // lazily built LPM trie over FIB
	classCache map[header.Prefix][]*Interface // memoized LongestMatchClass results
}

// lpmNode is one node of the binary LPM trie. outs holds the ECMP set of
// entries whose prefix ends exactly here; subtree counts all entries in
// this subtree, so atomicity checks are O(1).
type lpmNode struct {
	children [2]*lpmNode
	outs     []*Interface
	subtree  int
}

func (d *Device) lpmTrie() *lpmNode {
	if d.lpm != nil {
		return d.lpm
	}
	root := &lpmNode{}
	for _, e := range d.FIB {
		n := root
		n.subtree++
		for i := 0; i < e.Prefix.Len; i++ {
			bit := e.Prefix.Addr >> (31 - i) & 1
			if n.children[bit] == nil {
				n.children[bit] = &lpmNode{}
			}
			n = n.children[bit]
			n.subtree++
		}
		n.outs = append(n.outs, e.Out)
	}
	d.lpm = root
	return root
}

func (d *Device) invalidateLPM() {
	d.lpm = nil
	d.classCache = nil
}

// Interface returns the named interface, creating it on first use.
func (d *Device) Interface(name string) *Interface {
	if i, ok := d.Interfaces[name]; ok {
		return i
	}
	i := &Interface{Device: d, Name: name}
	d.Interfaces[name] = i
	return i
}

// AddRoute appends a forwarding entry.
func (d *Device) AddRoute(p header.Prefix, out *Interface) {
	if out.Device != d {
		panic(fmt.Sprintf("topo: route on %s via foreign interface %s", d.Name, out.ID()))
	}
	d.FIB = append(d.FIB, FIBEntry{Prefix: p, Out: out})
	d.invalidateLPM()
}

// LongestMatch returns the out-interfaces selected by longest-prefix
// match for destination addr (several under ECMP), or nil when the
// device has no route.
func (d *Device) LongestMatch(addr uint32) []*Interface {
	n := d.lpmTrie()
	var outs []*Interface
	for i := 0; ; i++ {
		if len(n.outs) > 0 {
			outs = n.outs
		}
		if i == 32 {
			break
		}
		n = n.children[addr>>(31-i)&1]
		if n == nil {
			break
		}
	}
	return outs
}

// LongestMatchClass returns the LPM result for an entire destination
// prefix class. The class must be atomic with respect to the device's
// FIB (contained in or disjoint from every entry prefix); LongestMatchClass
// panics otherwise, because a non-atomic class has no uniform forwarding
// behavior.
func (d *Device) LongestMatchClass(class header.Prefix) []*Interface {
	if outs, ok := d.classCache[class]; ok {
		return outs
	}
	n := d.lpmTrie()
	var outs []*Interface
	for i := 0; ; i++ {
		if len(n.outs) > 0 {
			outs = n.outs
		}
		if i == class.Len {
			break
		}
		n = n.children[class.Addr>>(31-i)&1]
		if n == nil {
			break
		}
	}
	// Entries strictly below the class node would split its forwarding.
	// (n is nil when the walk stopped at a missing child, which means no
	// entries lie below the class — always atomic.)
	if n != nil && n.subtree > len(n.outs) {
		panic(fmt.Sprintf("topo: class %v not atomic wrt FIB on %s", class, d.Name))
	}
	if d.classCache == nil {
		d.classCache = make(map[header.Prefix][]*Interface)
	}
	d.classCache[class] = outs
	return outs
}

// Network is the full modeled network.
type Network struct {
	Devices map[string]*Device

	links map[*Interface]*Interface // directed: egress interface -> peer ingress interface
	rev   map[*Interface]*Interface // ingress -> egress peer
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		Devices: make(map[string]*Device),
		links:   make(map[*Interface]*Interface),
		rev:     make(map[*Interface]*Interface),
	}
}

// Device returns the named device, creating it on first use.
func (n *Network) Device(name string) *Device {
	if d, ok := n.Devices[name]; ok {
		return d
	}
	d := &Device{Name: name, Interfaces: make(map[string]*Interface)}
	n.Devices[name] = d
	return d
}

// AddLink records a directed link: traffic leaving from (an egress
// interface) arrives at to (an ingress interface of another device).
// Physical bidirectional cables are modeled as two AddLink calls.
func (n *Network) AddLink(from, to *Interface) {
	if from.Device == to.Device {
		panic("topo: link endpoints on the same device")
	}
	if peer, ok := n.links[from]; ok && peer != to {
		panic(fmt.Sprintf("topo: interface %s already linked to %s", from.ID(), peer.ID()))
	}
	n.links[from] = to
	n.rev[to] = from
}

// Peer returns the ingress interface reached from egress interface i, or
// nil when i has no outgoing link (a network edge).
func (n *Network) Peer(i *Interface) *Interface { return n.links[i] }

// Upstream returns the egress interface feeding ingress interface i, or
// nil at a network edge.
func (n *Network) Upstream(i *Interface) *Interface { return n.rev[i] }

// LookupInterface resolves a "device:interface" ID.
func (n *Network) LookupInterface(id string) (*Interface, error) {
	parts := strings.SplitN(id, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("topo: interface ID %q is not device:interface", id)
	}
	d, ok := n.Devices[parts[0]]
	if !ok {
		return nil, fmt.Errorf("topo: unknown device %q", parts[0])
	}
	i, ok := d.Interfaces[parts[1]]
	if !ok {
		return nil, fmt.Errorf("topo: unknown interface %q on device %q", parts[1], parts[0])
	}
	return i, nil
}

// Clone deep-copies the network, including ACLs, FIBs, and links. The
// engine uses this to build the post-update snapshot L'_Ω without
// mutating the original.
func (n *Network) Clone() *Network {
	out := NewNetwork()
	for name, d := range n.Devices {
		nd := out.Device(name)
		for iname, i := range d.Interfaces {
			ni := nd.Interface(iname)
			for dir := range i.ACLs {
				if i.ACLs[dir] != nil {
					ni.ACLs[dir] = i.ACLs[dir].Clone()
				}
			}
		}
		for _, e := range d.FIB {
			nd.AddRoute(e.Prefix, nd.Interface(e.Out.Name))
		}
	}
	for from, to := range n.links {
		out.AddLink(
			out.Device(from.Device.Name).Interface(from.Name),
			out.Device(to.Device.Name).Interface(to.Name),
		)
	}
	return out
}

// SortedDevices returns the devices ordered by name for deterministic
// iteration.
func (n *Network) SortedDevices() []*Device {
	names := make([]string, 0, len(n.Devices))
	for name := range n.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Device, len(names))
	for i, name := range names {
		out[i] = n.Devices[name]
	}
	return out
}

// SortedInterfaces returns a device's interfaces ordered by name.
func (d *Device) SortedInterfaces() []*Interface {
	names := make([]string, 0, len(d.Interfaces))
	for name := range d.Interfaces {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Interface, len(names))
	for i, name := range names {
		out[i] = d.Interfaces[name]
	}
	return out
}

// Scope is a management scope Ω: a set of devices under update,
// identified by name so a Scope is portable across Clone()d snapshots.
// Optionally the scope restricts which border interfaces admit entering
// traffic (the paper's running example only considers traffic entering at
// A1; with destination-based routing, unrestricted scopes also enumerate
// paths entering at every other border interface).
type Scope struct {
	devices map[string]bool
	entries map[string]bool // border interface IDs; nil = all borders
}

// NewScope builds a scope over the named devices.
func NewScope(deviceNames ...string) *Scope {
	s := &Scope{devices: make(map[string]bool, len(deviceNames))}
	for _, d := range deviceNames {
		s.devices[d] = true
	}
	return s
}

// WithEntries restricts traffic entry to the given border interface IDs
// ("device:interface") and returns the scope for chaining.
func (s *Scope) WithEntries(ifaceIDs ...string) *Scope {
	s.entries = make(map[string]bool, len(ifaceIDs))
	for _, id := range ifaceIDs {
		s.entries[id] = true
	}
	return s
}

// AllowsEntry reports whether traffic may enter the scope at the given
// border interface.
func (s *Scope) AllowsEntry(ifaceID string) bool {
	return s.entries == nil || s.entries[ifaceID]
}

// ContainsDevice reports whether the named device is inside Ω.
func (s *Scope) ContainsDevice(name string) bool { return s.devices[name] }

// DeviceNames returns the sorted device names in Ω.
func (s *Scope) DeviceNames() []string {
	out := make([]string, 0, len(s.devices))
	for d := range s.devices {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// BorderInterfaces returns the interfaces of in-scope devices that
// exchange traffic with the outside (§3.3): an interface is border when
// its link peers with an out-of-scope device, or when it has no link at
// all (a network edge where external traffic enters/leaves).
func (n *Network) BorderInterfaces(s *Scope) []*Interface {
	var out []*Interface
	for _, name := range s.DeviceNames() {
		d, ok := n.Devices[name]
		if !ok {
			continue
		}
		for _, i := range d.SortedInterfaces() {
			peerOut := n.links[i]
			peerIn := n.rev[i]
			external := false
			if peerOut == nil && peerIn == nil {
				external = true // dangling edge interface
			}
			if peerOut != nil && !s.ContainsDevice(peerOut.Device.Name) {
				external = true
			}
			if peerIn != nil && !s.ContainsDevice(peerIn.Device.Name) {
				external = true
			}
			if external {
				out = append(out, i)
			}
		}
	}
	return out
}

// InScopeACLGroup returns the ACL group L_Ω: every (interface, direction)
// pair inside Ω carrying an ACL, in deterministic order.
type ACLBinding struct {
	Iface *Interface
	Dir   Direction
}

// ACLGroup collects the ACL bindings of all in-scope devices (the L_Ω of
// Table 2).
func (n *Network) ACLGroup(s *Scope) []ACLBinding {
	var out []ACLBinding
	for _, name := range s.DeviceNames() {
		d, ok := n.Devices[name]
		if !ok {
			continue
		}
		for _, i := range d.SortedInterfaces() {
			for _, dir := range []Direction{In, Out} {
				if i.ACLs[dir] != nil {
					out = append(out, ACLBinding{Iface: i, Dir: dir})
				}
			}
		}
	}
	return out
}

// BindingID identifies an ACL binding as "device:interface:dir".
func (b ACLBinding) ID() string { return b.Iface.ID() + ":" + b.Dir.String() }

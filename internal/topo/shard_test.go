package topo_test

import (
	"reflect"
	"testing"

	"jinjing/internal/netgen"
	"jinjing/internal/papernet"
	"jinjing/internal/topo"
)

// TestFECSourceMatchesComputeFECs pins the streaming source to the
// materializing implementation: same FEC count, order, member classes,
// and paths on the paper network and generated WANs.
func TestFECSourceMatchesComputeFECs(t *testing.T) {
	type scene struct {
		name  string
		net   *topo.Network
		scope *topo.Scope
	}
	var scenes []scene
	scenes = append(scenes, scene{"papernet", papernet.Build(), papernet.Scope()})
	for _, size := range []netgen.Size{netgen.Small, netgen.Medium} {
		for seed := int64(1); seed <= 3; seed++ {
			w := netgen.Build(netgen.DefaultConfig(size, seed))
			scenes = append(scenes, scene{size.String(), w.Net, w.Scope})
		}
	}
	for _, sc := range scenes {
		paths := sc.net.AllPaths(sc.scope)
		classes := sc.net.EnteringTraffic(sc.scope)
		want := topo.ComputeFECs(paths, classes)
		src := topo.NewFECSource(paths, classes)
		if src.NumFECs() != len(want) {
			t.Fatalf("%s: NumFECs = %d, ComputeFECs = %d", sc.name, src.NumFECs(), len(want))
		}
		for i := range want {
			got := src.Materialize(i)
			if !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("%s: FEC %d differs:\n got %+v\nwant %+v", sc.name, i, got, want[i])
			}
			if src.NumClasses(i) != len(want[i].Classes) {
				t.Fatalf("%s: FEC %d NumClasses = %d, want %d", sc.name, i, src.NumClasses(i), len(want[i].Classes))
			}
			if len(src.PathIndices(i)) != len(want[i].Paths) {
				t.Fatalf("%s: FEC %d PathIndices = %d, want %d", sc.name, i, len(src.PathIndices(i)), len(want[i].Paths))
			}
		}
	}
}

// TestFECSourceShards checks the partition invariants: ranges cover
// [0, NumFECs) exactly once in order, respect the requested count, and
// are deterministic.
func TestFECSourceShards(t *testing.T) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 7))
	paths := w.Net.AllPaths(w.Scope)
	classes := w.Net.EnteringTraffic(w.Scope)
	src := topo.NewFECSource(paths, classes)
	n := src.NumFECs()
	if n == 0 {
		t.Fatal("no FECs generated")
	}
	for _, k := range []int{1, 2, 3, 8, n, n + 5, 1000} {
		shards := src.Shards(k)
		if len(shards) == 0 || len(shards) > k || len(shards) > n {
			t.Fatalf("Shards(%d) over %d FECs returned %d ranges", k, n, len(shards))
		}
		next := 0
		for _, sr := range shards {
			if sr.Lo != next || sr.Hi <= sr.Lo || sr.Hi > n {
				t.Fatalf("Shards(%d): bad range %+v (next=%d, n=%d)", k, sr, next, n)
			}
			next = sr.Hi
		}
		if next != n {
			t.Fatalf("Shards(%d): covered [0,%d), want [0,%d)", k, next, n)
		}
		again := src.Shards(k)
		if !reflect.DeepEqual(shards, again) {
			t.Fatalf("Shards(%d) not deterministic", k)
		}
	}
	if got := src.Shards(0); len(got) != 1 || got[0] != (topo.ShardRange{Lo: 0, Hi: n}) {
		t.Fatalf("Shards(0) = %+v, want one full range", got)
	}
	// When k == n every shard is a single FEC.
	for i, sr := range src.Shards(n) {
		if sr.Lo != i || sr.Hi != i+1 {
			t.Fatalf("Shards(n)[%d] = %+v", i, sr)
		}
	}
}

func TestFECSourceEmpty(t *testing.T) {
	src := topo.NewFECSource(nil, nil)
	if src.NumFECs() != 0 {
		t.Fatalf("NumFECs = %d", src.NumFECs())
	}
	if got := src.Shards(4); got != nil {
		t.Fatalf("Shards on empty source = %+v", got)
	}
}

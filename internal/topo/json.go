package topo

import (
	"encoding/json"
	"fmt"

	"jinjing/internal/acl"
	"jinjing/internal/header"
)

// The JSON schema for networks, used by the command-line tools. ACLs are
// embedded in their textual syntax so files stay human-editable.

type networkJSON struct {
	Devices []deviceJSON `json:"devices"`
	Links   []linkJSON   `json:"links"`
}

type deviceJSON struct {
	Name       string          `json:"name"`
	Interfaces []interfaceJSON `json:"interfaces"`
	Routes     []routeJSON     `json:"routes,omitempty"`
}

type interfaceJSON struct {
	Name   string `json:"name"`
	InACL  string `json:"in_acl,omitempty"`
	OutACL string `json:"out_acl,omitempty"`
}

type routeJSON struct {
	Prefix string `json:"prefix"`
	Out    string `json:"out"`
}

type linkJSON struct {
	From string `json:"from"` // "device:interface" (egress side)
	To   string `json:"to"`   // "device:interface" (ingress side)
}

// MarshalJSON serializes the network deterministically.
func (n *Network) MarshalJSON() ([]byte, error) {
	var out networkJSON
	for _, d := range n.SortedDevices() {
		dj := deviceJSON{Name: d.Name}
		for _, i := range d.SortedInterfaces() {
			ij := interfaceJSON{Name: i.Name}
			if a := i.ACL(In); a != nil {
				ij.InACL = a.String()
			}
			if a := i.ACL(Out); a != nil {
				ij.OutACL = a.String()
			}
			dj.Interfaces = append(dj.Interfaces, ij)
		}
		for _, e := range d.FIB {
			dj.Routes = append(dj.Routes, routeJSON{Prefix: e.Prefix.String(), Out: e.Out.Name})
		}
		out.Devices = append(out.Devices, dj)
	}
	// Links sorted by (from, to) for determinism.
	for _, d := range n.SortedDevices() {
		for _, i := range d.SortedInterfaces() {
			if peer := n.Peer(i); peer != nil {
				out.Links = append(out.Links, linkJSON{From: i.ID(), To: peer.ID()})
			}
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON loads a network from its JSON form.
func (n *Network) UnmarshalJSON(data []byte) error {
	var in networkJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if n.Devices == nil {
		*n = *NewNetwork()
	}
	for _, dj := range in.Devices {
		d := n.Device(dj.Name)
		for _, ij := range dj.Interfaces {
			iface := d.Interface(ij.Name)
			if ij.InACL != "" {
				a, err := acl.Parse(ij.InACL)
				if err != nil {
					return fmt.Errorf("topo: device %s interface %s in-ACL: %v", dj.Name, ij.Name, err)
				}
				iface.SetACL(In, a)
			}
			if ij.OutACL != "" {
				a, err := acl.Parse(ij.OutACL)
				if err != nil {
					return fmt.Errorf("topo: device %s interface %s out-ACL: %v", dj.Name, ij.Name, err)
				}
				iface.SetACL(Out, a)
			}
		}
		for _, rj := range dj.Routes {
			p, err := header.ParsePrefix(rj.Prefix)
			if err != nil {
				return fmt.Errorf("topo: device %s route: %v", dj.Name, err)
			}
			d.AddRoute(p, d.Interface(rj.Out))
		}
	}
	for _, lj := range in.Links {
		from, err := n.LookupInterface(lj.From)
		if err != nil {
			return fmt.Errorf("topo: link: %v", err)
		}
		to, err := n.LookupInterface(lj.To)
		if err != nil {
			return fmt.Errorf("topo: link: %v", err)
		}
		n.AddLink(from, to)
	}
	return nil
}

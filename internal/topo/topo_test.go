package topo_test

import (
	"sort"
	"strings"
	"testing"

	"jinjing/internal/acl"
	"jinjing/internal/header"
	"jinjing/internal/papernet"
	"jinjing/internal/topo"
)

func pfx(s string) header.Prefix { return header.MustParsePrefix(s) }

func TestDeviceInterfaceCreation(t *testing.T) {
	n := topo.NewNetwork()
	d := n.Device("A")
	if n.Device("A") != d {
		t.Fatal("Device should be idempotent")
	}
	i := d.Interface("1")
	if d.Interface("1") != i {
		t.Fatal("Interface should be idempotent")
	}
	if i.ID() != "A:1" {
		t.Fatalf("ID = %q", i.ID())
	}
}

func TestLookupInterface(t *testing.T) {
	n := papernet.Build()
	i, err := n.LookupInterface("A:1")
	if err != nil || i.Name != "1" || i.Device.Name != "A" {
		t.Fatalf("lookup: %v %v", i, err)
	}
	for _, bad := range []string{"A", "Z:1", "A:9"} {
		if _, err := n.LookupInterface(bad); err == nil {
			t.Errorf("LookupInterface(%q) should fail", bad)
		}
	}
}

func TestLongestMatch(t *testing.T) {
	n := topo.NewNetwork()
	d := n.Device("R")
	i1, i2 := d.Interface("1"), d.Interface("2")
	d.AddRoute(pfx("1.0.0.0/8"), i1)
	d.AddRoute(pfx("1.2.0.0/16"), i2)
	if got := d.LongestMatch(0x01020304); len(got) != 1 || got[0] != i2 {
		t.Fatalf("LPM should prefer /16: %v", got)
	}
	if got := d.LongestMatch(0x01990304); len(got) != 1 || got[0] != i1 {
		t.Fatalf("LPM should fall back to /8: %v", got)
	}
	if got := d.LongestMatch(0x09000000); got != nil {
		t.Fatalf("no route should yield nil: %v", got)
	}
	// ECMP.
	d.AddRoute(pfx("1.2.0.0/16"), i1)
	if got := d.LongestMatch(0x01020304); len(got) != 2 {
		t.Fatalf("ECMP should yield both: %v", got)
	}
}

func TestLongestMatchClassAtomicity(t *testing.T) {
	n := topo.NewNetwork()
	d := n.Device("R")
	i1 := d.Interface("1")
	d.AddRoute(pfx("1.2.0.0/16"), i1)
	defer func() {
		if recover() == nil {
			t.Fatal("non-atomic class must panic")
		}
	}()
	d.LongestMatchClass(pfx("1.0.0.0/8")) // strictly contains the /16
}

func TestBorderInterfaces(t *testing.T) {
	n := papernet.Build()
	s := papernet.Scope()
	borders := n.BorderInterfaces(s)
	var ids []string
	for _, b := range borders {
		ids = append(ids, b.ID())
	}
	sort.Strings(ids)
	want := []string{"A:1", "C:3", "D:3"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("borders = %v, want %v", ids, want)
	}
}

func TestBorderWithPartialScope(t *testing.T) {
	n := papernet.Build()
	s := topo.NewScope("A", "B") // C and D outside
	borders := n.BorderInterfaces(s)
	var ids []string
	for _, b := range borders {
		ids = append(ids, b.ID())
	}
	sort.Strings(ids)
	// A1 (edge), A3 (links to C, out of scope), A4 (links to D), B2 (links to C).
	want := "A:1,A:3,A:4,B:2"
	if strings.Join(ids, ",") != want {
		t.Fatalf("borders = %v, want %v", ids, want)
	}
}

func TestAllPathsFigure1(t *testing.T) {
	n := papernet.Build()
	paths := n.AllPaths(papernet.Scope())
	got := map[string]bool{}
	for _, p := range paths {
		got[p.String()] = true
		if err := p.Validate(n); err != nil {
			t.Errorf("invalid path %v: %v", p, err)
		}
	}
	// The routing-DAG path set: <A:1, A:2, B:1, B:2, C:2, C:3> is pruned
	// because no entering class is forwarded along it (C routes nothing
	// arriving at C:2 out of C:3).
	want := []string{
		"<A:1, A:4, D:1, D:3>",
		"<A:1, A:3, C:1, C:4, D:2, D:3>",
		"<A:1, A:2, B:1, B:2, C:2, C:4, D:2, D:3>",
		"<A:1, A:3, C:1, C:3>",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d paths %v, want %d", len(got), got, len(want))
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing path %s", w)
		}
	}
}

func TestPathSrcDstAndPermits(t *testing.T) {
	n := papernet.Build()
	paths := n.AllPaths(papernet.Scope())
	for _, p := range paths {
		if p.Src().ID() != "A:1" {
			t.Errorf("path %v should start at A:1", p)
		}
		if d := p.Dst().ID(); d != "C:3" && d != "D:3" {
			t.Errorf("path %v should end at a border", p)
		}
	}
	// c_{p0} on traffic 6 is false (A1 denies 6/8), true on traffic 3.
	var p0 topo.Path
	for _, p := range paths {
		if p.String() == "<A:1, A:4, D:1, D:3>" {
			p0 = p
		}
	}
	pkt6 := header.Packet{DstIP: 6 << 24}
	pkt3 := header.Packet{DstIP: 3 << 24}
	if p0.Permits(pkt6) {
		t.Error("A1 should deny traffic 6 on p0")
	}
	if !p0.Permits(pkt3) {
		t.Error("traffic 3 should pass p0")
	}
	// c_{p1} on traffic 1 is false (D2 denies 1/8).
	for _, p := range paths {
		if p.String() == "<A:1, A:3, C:1, C:4, D:2, D:3>" {
			if p.Permits(header.Packet{DstIP: 1 << 24}) {
				t.Error("D2 should deny traffic 1 on p1")
			}
		}
	}
}

func TestForwardsClass(t *testing.T) {
	n := papernet.Build()
	paths := n.AllPaths(papernet.Scope())
	byStr := map[string]topo.Path{}
	for _, p := range paths {
		byStr[p.String()] = p
	}
	p0 := byStr["<A:1, A:4, D:1, D:3>"]
	p1 := byStr["<A:1, A:3, C:1, C:4, D:2, D:3>"]
	p2 := byStr["<A:1, A:2, B:1, B:2, C:2, C:4, D:2, D:3>"]
	cases := []struct {
		class int
		path  topo.Path
		want  bool
	}{
		{1, p0, true}, {1, p1, false}, {1, p2, false},
		{2, p0, true}, {2, p1, false}, {2, p2, true},
		{3, p2, true},
		{4, p0, true}, {4, p1, true}, {4, p2, false},
		{5, p2, true}, {5, p0, false},
		{7, p1, false},
	}
	for _, c := range cases {
		if got := c.path.ForwardsClass(papernet.Traffic(c.class)); got != c.want {
			t.Errorf("ForwardsClass(traffic %d, %v) = %v, want %v", c.class, c.path, got, c.want)
		}
	}
}

func TestComputeFECsFigure1(t *testing.T) {
	// The paper's §4.1: five FECs, [1]={1}, [2]={2,3}, [4]={4},
	// [5]={5,6}, [7]={7}.
	n := papernet.Build()
	s := papernet.Scope()
	paths := n.AllPaths(s)
	classes := make([]header.Prefix, 0, 7)
	for i := 1; i <= 7; i++ {
		classes = append(classes, papernet.Traffic(i))
	}
	fecs := topo.ComputeFECs(paths, classes)
	if len(fecs) != 5 {
		for _, f := range fecs {
			t.Logf("FEC %v paths %d", f.Classes, len(f.Paths))
		}
		t.Fatalf("got %d FECs, want 5", len(fecs))
	}
	groups := map[string]string{}
	for _, f := range fecs {
		var members []string
		for _, c := range f.Classes {
			members = append(members, c.String())
		}
		groups[f.Representative().String()] = strings.Join(members, ",")
	}
	want := map[string]string{
		"1.0.0.0/8": "1.0.0.0/8",
		"2.0.0.0/8": "2.0.0.0/8,3.0.0.0/8",
		"4.0.0.0/8": "4.0.0.0/8",
		"5.0.0.0/8": "5.0.0.0/8,6.0.0.0/8",
		"7.0.0.0/8": "7.0.0.0/8",
	}
	for rep, members := range want {
		if groups[rep] != members {
			t.Errorf("FEC[%s] = %q, want %q (all: %v)", rep, groups[rep], members, groups)
		}
	}
}

func TestEnteringTraffic(t *testing.T) {
	n := papernet.Build()
	s := papernet.Scope()
	classes := n.EnteringTraffic(s)
	if len(classes) != 7 {
		t.Fatalf("entering traffic = %v, want the 7 /8s", classes)
	}
	// With an extra /16 inside traffic 1, atomization splits the /8.
	classes = n.EnteringTraffic(s, pfx("1.2.0.0/16"))
	found16 := false
	for _, c := range classes {
		if c == pfx("1.2.0.0/16") {
			found16 = true
		}
		if c.Contains(pfx("1.2.0.0/16")) && c != pfx("1.2.0.0/16") {
			t.Errorf("class %v not atomic wrt 1.2.0.0/16", c)
		}
	}
	if !found16 {
		t.Error("1.2.0.0/16 should be its own class")
	}
}

func TestAtomizeClasses(t *testing.T) {
	classes := []header.Prefix{pfx("1.0.0.0/8")}
	cuts := []header.Prefix{pfx("1.2.0.0/16"), pfx("1.0.0.0/8")}
	atoms := topo.AtomizeClasses(classes, cuts)
	// Every atom must be inside 1.0.0.0/8, atomic wrt 1.2.0.0/16, and the
	// union must cover the /8 exactly.
	var total uint64
	for _, a := range atoms {
		if !pfx("1.0.0.0/8").Contains(a) {
			t.Errorf("atom %v outside class", a)
		}
		if a.Overlaps(pfx("1.2.0.0/16")) && !pfx("1.2.0.0/16").Contains(a) {
			t.Errorf("atom %v straddles the cut", a)
		}
		total += a.Size()
	}
	if total != pfx("1.0.0.0/8").Size() {
		t.Errorf("atoms cover %d addresses, want %d", total, pfx("1.0.0.0/8").Size())
	}
	// Disjointness.
	for i := range atoms {
		for j := i + 1; j < len(atoms); j++ {
			if atoms[i].Overlaps(atoms[j]) {
				t.Errorf("atoms %v and %v overlap", atoms[i], atoms[j])
			}
		}
	}
}

func TestAtomizeNoCuts(t *testing.T) {
	classes := []header.Prefix{pfx("1.0.0.0/8"), pfx("2.0.0.0/8"), pfx("1.0.0.0/8")}
	atoms := topo.AtomizeClasses(classes, nil)
	if len(atoms) != 2 {
		t.Fatalf("atoms = %v, want dedup to 2", atoms)
	}
}

func TestCloneIndependence(t *testing.T) {
	n := papernet.Build()
	c := n.Clone()
	// Mutating the clone's ACL must not affect the original.
	ci, _ := c.LookupInterface("D:2")
	ci.SetACL(topo.In, acl.PermitAll())
	oi, _ := n.LookupInterface("D:2")
	if oi.ACL(topo.In).IsPermitAll() {
		t.Fatal("clone shares ACLs with original")
	}
	// Structure preserved: same paths.
	p1 := n.AllPaths(papernet.Scope())
	p2 := c.AllPaths(papernet.Scope())
	if len(p1) != len(p2) {
		t.Fatalf("clone has %d paths, original %d", len(p2), len(p1))
	}
	set := map[string]bool{}
	for _, p := range p1 {
		set[p.String()] = true
	}
	for _, p := range p2 {
		if !set[p.String()] {
			t.Errorf("clone path %v missing from original", p)
		}
	}
}

func TestACLGroup(t *testing.T) {
	n := papernet.Build()
	group := n.ACLGroup(papernet.Scope())
	var ids []string
	for _, b := range group {
		ids = append(ids, b.ID())
	}
	want := "A:1:in,C:1:in,D:2:in"
	if strings.Join(ids, ",") != want {
		t.Fatalf("ACL group = %v, want %v", ids, want)
	}
}

func TestScopeEntries(t *testing.T) {
	s := topo.NewScope("A").WithEntries("A:1")
	if !s.AllowsEntry("A:1") || s.AllowsEntry("A:2") {
		t.Error("entry restriction wrong")
	}
	open := topo.NewScope("A")
	if !open.AllowsEntry("anything") {
		t.Error("unrestricted scope should allow all entries")
	}
	if !s.ContainsDevice("A") || s.ContainsDevice("B") {
		t.Error("ContainsDevice wrong")
	}
}

func TestDirectionString(t *testing.T) {
	if topo.In.String() != "in" || topo.Out.String() != "out" {
		t.Error("Direction.String wrong")
	}
}

func TestPathBindings(t *testing.T) {
	n := papernet.Build()
	paths := n.AllPaths(papernet.Scope())
	for _, p := range paths {
		bs := p.Bindings()
		if len(bs) != 2*len(p.Hops) {
			t.Fatalf("bindings count wrong for %v", p)
		}
		if bs[0].Dir != topo.In || bs[1].Dir != topo.Out {
			t.Fatalf("binding directions wrong for %v", p)
		}
	}
}

func TestFECPermitsConsistency(t *testing.T) {
	// Every class inside one FEC must behave identically on every path —
	// the defining property (Equation 2).
	n := papernet.Build()
	s := papernet.Scope()
	paths := n.AllPaths(s)
	classes := n.EnteringTraffic(s)
	fecs := topo.ComputeFECs(paths, classes)
	for _, f := range fecs {
		for _, p := range paths {
			first := p.ForwardsClass(f.Classes[0])
			for _, c := range f.Classes[1:] {
				if p.ForwardsClass(c) != first {
					t.Errorf("FEC %v split by path %v", f.Classes, p)
				}
			}
		}
	}
}

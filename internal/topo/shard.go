package topo

import "jinjing/internal/header"

// FECSource is a streaming equivalent of ComputeFECs: it performs the
// same grouping of atomized traffic classes by forwarding behavior
// (Equation 2 specialized to destination-based forwarding), but stores
// only index vectors into the shared paths/classes slices instead of
// materialized FEC values. A scope with F FECs over C classes and P
// paths costs O(C + Σ|paths per FEC|) int32s to index, while the
// FEC values themselves are materialized one at a time (Materialize) or
// one contiguous shard window at a time (Shards), bounding live memory
// by the largest shard rather than the whole scope.
//
// The FEC order, per-FEC class order, and per-FEC path order are
// identical to ComputeFECs: classes are scanned in order, groups appear
// in first-seen order, and a group's paths are the forwarding subset of
// the first member class (all members forward the same subset, by
// construction). ComputeFECs keys groups on the joined Path.Key()
// strings; grouping on path-index sequences is equivalent because the
// structural path set never contains two distinct walks with the same
// interface sequence (a path is its interface sequence). This
// equivalence is pinned by TestFECSourceMatchesComputeFECs.
type FECSource struct {
	paths   []Path
	classes []header.Prefix

	classIdx [][]int32 // per FEC: ascending indices into classes
	pathIdx  [][]int32 // per FEC: ascending indices into paths
}

// NewFECSource scans classes once and groups them into FECs by the set
// of structural paths that forward them. Classes forwarded by no path
// are dropped, exactly as in ComputeFECs.
func NewFECSource(paths []Path, classes []header.Prefix) *FECSource {
	s := &FECSource{paths: paths, classes: classes}
	buckets := make(map[uint64][]int)
	var fwd []int32
	for ci, c := range classes {
		fwd = fwd[:0]
		for pi := range paths {
			if paths[pi].ForwardsClass(c) {
				fwd = append(fwd, int32(pi))
			}
		}
		if len(fwd) == 0 {
			continue
		}
		h := hashIdx(fwd)
		gi := -1
		for _, g := range buckets[h] {
			if equalIdx(s.pathIdx[g], fwd) {
				gi = g
				break
			}
		}
		if gi < 0 {
			gi = len(s.pathIdx)
			s.pathIdx = append(s.pathIdx, append([]int32(nil), fwd...))
			s.classIdx = append(s.classIdx, nil)
			buckets[h] = append(buckets[h], gi)
		}
		s.classIdx[gi] = append(s.classIdx[gi], int32(ci))
	}
	return s
}

// NumFECs returns the number of forwarding equivalence classes.
func (s *FECSource) NumFECs() int { return len(s.pathIdx) }

// Materialize builds FEC i with fresh Classes/Paths slices. The result
// is value-identical to ComputeFECs(paths, classes)[i].
func (s *FECSource) Materialize(i int) FEC {
	f := FEC{
		Classes: make([]header.Prefix, len(s.classIdx[i])),
		Paths:   make([]Path, len(s.pathIdx[i])),
	}
	for k, ci := range s.classIdx[i] {
		f.Classes[k] = s.classes[ci]
	}
	for k, pi := range s.pathIdx[i] {
		f.Paths[k] = s.paths[pi]
	}
	return f
}

// PathIndices returns FEC i's path-index vector (indices into the paths
// slice the source was built from). Callers must not mutate it.
func (s *FECSource) PathIndices(i int) []int32 { return s.pathIdx[i] }

// NumClasses returns the number of member classes of FEC i without
// materializing it.
func (s *FECSource) NumClasses(i int) int { return len(s.classIdx[i]) }

// ShardRange is a half-open range [Lo, Hi) of FEC indices forming one
// shard.
type ShardRange struct {
	Lo, Hi int
}

// Shards partitions the FEC index space into at most k contiguous
// ranges, weight-balanced by per-FEC class+path counts (a proxy for
// formula size). Because the engine's classes are sorted by destination
// prefix and FECs appear in first-seen class order, contiguous FEC
// ranges correspond to destination-prefix subtrees of the scope's
// routable space — the partition axis named in §4.1's decomposition.
// The partition is deterministic; fewer than k ranges are returned when
// there are fewer FECs than shards.
func (s *FECSource) Shards(k int) []ShardRange {
	n := s.NumFECs()
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	var total int64
	weights := make([]int64, n)
	for i := range weights {
		w := int64(len(s.classIdx[i]) + len(s.pathIdx[i]))
		weights[i] = w
		total += w
	}
	out := make([]ShardRange, 0, k)
	lo := 0
	var acc, spent int64
	for i := 0; i < n; i++ {
		acc += weights[i]
		rem := k - len(out)
		if rem <= 1 {
			break
		}
		// Close the shard once it reaches an even split of the weight
		// still unassigned — but keep at least one FEC per open shard,
		// and close unconditionally once only that minimum remains.
		full := acc >= (total-spent)/int64(rem) && n-(i+1) >= rem-1
		if full || n-(i+1) == rem-1 {
			out = append(out, ShardRange{Lo: lo, Hi: i + 1})
			lo = i + 1
			spent += acc
			acc = 0
		}
	}
	return append(out, ShardRange{Lo: lo, Hi: n})
}

// hashIdx is FNV-1a over the little-endian bytes of an index vector.
func hashIdx(idx []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range idx {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= 1099511628211
		}
	}
	return h
}

func equalIdx(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package topo

import (
	"fmt"
	"strings"

	"jinjing/internal/header"
)

// Hop is one device traversal on a path: the packet enters through In and
// leaves through Out.
type Hop struct {
	In  *Interface
	Out *Interface
}

// Path is a border-to-border route through the scope (§3.3): the first
// hop's In and the last hop's Out are border interfaces.
type Path struct {
	Hops []Hop
}

// Interfaces flattens the path into the paper's interface-list notation,
// e.g. ⟨A1, A4, D1, D3⟩: alternating ingress and egress interfaces.
func (p Path) Interfaces() []*Interface {
	out := make([]*Interface, 0, 2*len(p.Hops))
	for _, h := range p.Hops {
		out = append(out, h.In, h.Out)
	}
	return out
}

// Bindings returns the (interface, direction) pairs whose ACLs apply to
// traffic on this path, in traversal order. Unbound (nil-ACL) pairs are
// included too, because fix/generate may place new ACLs on them.
func (p Path) Bindings() []ACLBinding {
	out := make([]ACLBinding, 0, 2*len(p.Hops))
	for _, h := range p.Hops {
		out = append(out, ACLBinding{Iface: h.In, Dir: In}, ACLBinding{Iface: h.Out, Dir: Out})
	}
	return out
}

// Src returns the border interface where the path enters the scope.
func (p Path) Src() *Interface { return p.Hops[0].In }

// Dst returns the border interface where the path leaves the scope.
func (p Path) Dst() *Interface { return p.Hops[len(p.Hops)-1].Out }

// Permits evaluates the path decision model c_p(h) (Equation 1): the
// conjunction of every on-path ACL's decision on the packet.
func (p Path) Permits(pkt header.Packet) bool {
	for _, h := range p.Hops {
		if !h.In.Permits(In, pkt) || !h.Out.Permits(Out, pkt) {
			return false
		}
	}
	return true
}

// String renders the path in the paper's ⟨A1, A4, D1, D3⟩ notation.
func (p Path) String() string {
	parts := make([]string, 0, 2*len(p.Hops))
	for _, i := range p.Interfaces() {
		parts = append(parts, i.ID())
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Key returns a canonical identity string for deduplication.
func (p Path) Key() string { return p.String() }

// maxPathDevices bounds structural path enumeration; cloud WAN paths are
// short (the paper's footnote 1: paths are enumerable in polynomial time
// over the routing DAG).
const maxPathDevices = 12

// AllPaths enumerates P_Ω, the paths of the scope's routing DAG: every
// loop-free border-to-border route that the forwarding tables support for
// at least one class of entering traffic (the paper's footnote 1 — paths
// come "from the perspective of routing DAGs", which keeps enumeration
// polynomial in layered networks by pruning valley routes no traffic can
// take). Each device traversal goes from an ingress interface to an
// egress interface that either leaves the scope (ending the path) or
// links to another in-scope device. Results are deterministic.
func (n *Network) AllPaths(s *Scope) []Path {
	classes := n.EnteringTraffic(s)
	var out []Path
	for _, entry := range n.BorderInterfaces(s) {
		if !s.AllowsEntry(entry.ID()) {
			continue
		}
		// Traffic can enter here if the interface is an edge or its
		// upstream is out of scope.
		up := n.Upstream(entry)
		if up != nil && s.ContainsDevice(up.Device.Name) {
			continue // this border interface only sends traffic out
		}
		visited := map[string]bool{}
		n.extendPaths(s, entry, visited, nil, classes, &out)
	}
	return out
}

// extendPaths extends a partial path entering dev through in. alive is
// the set of traffic classes the forwarding tables could still route
// along the partial path; a branch with no alive classes is pruned.
func (n *Network) extendPaths(s *Scope, in *Interface, visited map[string]bool, hops []Hop, alive []header.Prefix, out *[]Path) {
	dev := in.Device
	if visited[dev.Name] || len(hops) >= maxPathDevices {
		return
	}
	visited[dev.Name] = true
	defer delete(visited, dev.Name)

	for _, o := range dev.SortedInterfaces() {
		if o == in {
			continue
		}
		// Keep only the classes this device actually forwards to o.
		var next []header.Prefix
		for _, c := range alive {
			for _, lpmOut := range dev.LongestMatchClass(c) {
				if lpmOut == o {
					next = append(next, c)
					break
				}
			}
		}
		if len(next) == 0 {
			continue
		}
		peer := n.Peer(o)
		cur := append(append([]Hop(nil), hops...), Hop{In: in, Out: o})
		switch {
		case peer == nil:
			// Network edge: the path leaves the scope here.
			*out = append(*out, Path{Hops: cur})
		case !s.ContainsDevice(peer.Device.Name):
			*out = append(*out, Path{Hops: cur})
		default:
			n.extendPaths(s, peer, visited, cur, next, out)
		}
	}
}

// ForwardsClass reports whether the network's forwarding tables route the
// destination-prefix class along path p: at every hop, the device's LPM
// for the class selects the hop's egress interface. class must be atomic
// with respect to every on-path FIB.
func (p Path) ForwardsClass(class header.Prefix) bool {
	for _, h := range p.Hops {
		outs := h.In.Device.LongestMatchClass(class)
		found := false
		for _, o := range outs {
			if o == h.Out {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// PathsForClass returns the subset of paths that forward the class (the
// 𝒴 sets of Algorithm 1 and §5.3).
func PathsForClass(paths []Path, class header.Prefix) []Path {
	var out []Path
	for _, p := range paths {
		if p.ForwardsClass(class) {
			out = append(out, p)
		}
	}
	return out
}

// Validate performs structural sanity checks on a path.
func (p Path) Validate(n *Network) error {
	if len(p.Hops) == 0 {
		return fmt.Errorf("topo: empty path")
	}
	for i, h := range p.Hops {
		if h.In.Device != h.Out.Device {
			return fmt.Errorf("topo: hop %d spans devices %s and %s", i, h.In.Device.Name, h.Out.Device.Name)
		}
		if i > 0 {
			prev := p.Hops[i-1]
			if n.Peer(prev.Out) != h.In {
				return fmt.Errorf("topo: hop %d not linked from previous hop", i)
			}
		}
	}
	return nil
}

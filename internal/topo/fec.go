package topo

import (
	"sort"
	"strings"

	"jinjing/internal/header"
)

// prefixTrie is a binary trie over IPv4 prefixes, used to atomize traffic
// classes against the forwarding tables: after inserting a set of "cut"
// prefixes, the atoms of a class C are the maximal sub-prefixes of C that
// contain no cut strictly inside them, so every atom is contained in or
// disjoint from every cut (and therefore has uniform LPM behavior).
type prefixTrie struct {
	root *trieNode
}

type trieNode struct {
	children [2]*trieNode
	marked   bool // a cut prefix ends here
}

func newPrefixTrie() *prefixTrie { return &prefixTrie{root: &trieNode{}} }

func (t *prefixTrie) insert(p header.Prefix) {
	n := t.root
	for i := 0; i < p.Len; i++ {
		bit := p.Addr >> (31 - i) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode{}
		}
		n = n.children[bit]
	}
	n.marked = true
}

// atoms appends the atomization of class to out: walk to the class node,
// then recursively split wherever a cut lies strictly below.
func (t *prefixTrie) atoms(class header.Prefix, out []header.Prefix) []header.Prefix {
	n := t.root
	for i := 0; i < class.Len; i++ {
		bit := class.Addr >> (31 - i) & 1
		if n.children[bit] == nil {
			// No cut lies inside the class: it is already atomic.
			return append(out, class)
		}
		n = n.children[bit]
	}
	return splitNode(n, class, out)
}

func splitNode(n *trieNode, p header.Prefix, out []header.Prefix) []header.Prefix {
	if n.children[0] == nil && n.children[1] == nil {
		return append(out, p)
	}
	left, right := p.Halves()
	if n.children[0] != nil {
		out = splitNode(n.children[0], left, out)
	} else {
		out = append(out, left)
	}
	if n.children[1] != nil {
		out = splitNode(n.children[1], right, out)
	} else {
		out = append(out, right)
	}
	return out
}

// AtomizeClasses splits each class prefix against the cut prefixes so
// that every returned prefix is contained in or disjoint from every cut.
// Duplicates are removed; the result is sorted for determinism.
func AtomizeClasses(classes, cuts []header.Prefix) []header.Prefix {
	t := newPrefixTrie()
	for _, c := range cuts {
		t.insert(c)
	}
	var out []header.Prefix
	seen := make(map[header.Prefix]bool)
	for _, c := range classes {
		for _, a := range t.atoms(c, nil) {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// ScopeFIBPrefixes collects every FIB prefix of in-scope devices.
func (n *Network) ScopeFIBPrefixes(s *Scope) []header.Prefix {
	var out []header.Prefix
	for _, name := range s.DeviceNames() {
		d, ok := n.Devices[name]
		if !ok {
			continue
		}
		for _, e := range d.FIB {
			out = append(out, e.Prefix)
		}
	}
	return out
}

// EnteringTraffic derives X_Ω, the destination-prefix classes of traffic
// entering the scope. The paper extracts this from Alibaba's IP
// management system; here the routable prefixes are exactly those
// announced in the in-scope forwarding tables, atomized so every class
// has uniform forwarding (and can be refined further by callers). Extra
// classes (e.g. prefixes named in control intents) may be passed in.
func (n *Network) EnteringTraffic(s *Scope, extra ...header.Prefix) []header.Prefix {
	cuts := n.ScopeFIBPrefixes(s)
	classes := append(append([]header.Prefix(nil), cuts...), extra...)
	cuts = append(cuts, extra...)
	return AtomizeClasses(classes, cuts)
}

// FEC is a forwarding equivalence class (§4.1): a set of traffic classes
// with identical forwarding behavior on every in-scope link. Classes is
// non-empty; all members forward along exactly the Paths.
type FEC struct {
	Classes []header.Prefix
	Paths   []Path // the paths (from the structural set) that forward this FEC
}

// Representative returns the exemplar class [h]_FEC.
func (f FEC) Representative() header.Prefix { return f.Classes[0] }

// ComputeFECs groups atomized traffic classes into forwarding equivalence
// classes using the structural path set: two classes are equivalent iff
// the same subset of paths forwards them (Equation 2 specialized to
// destination-based forwarding). Classes forwarded by no path are
// dropped — they never transit the scope.
func ComputeFECs(paths []Path, classes []header.Prefix) []FEC {
	groups := make(map[string]*FEC)
	var order []string
	for _, c := range classes {
		fwd := PathsForClass(paths, c)
		if len(fwd) == 0 {
			continue
		}
		keyParts := make([]string, len(fwd))
		for i, p := range fwd {
			keyParts[i] = p.Key()
		}
		key := strings.Join(keyParts, "|")
		g, ok := groups[key]
		if !ok {
			g = &FEC{Paths: fwd}
			groups[key] = g
			order = append(order, key)
		}
		g.Classes = append(g.Classes, c)
	}
	out := make([]FEC, 0, len(groups))
	for _, key := range order {
		out = append(out, *groups[key])
	}
	return out
}

package topo_test

import (
	"math/rand"
	"testing"

	"jinjing/internal/header"
	"jinjing/internal/netgen"
	"jinjing/internal/papernet"
	"jinjing/internal/topo"
)

func BenchmarkAllPathsFigure1(b *testing.B) {
	n := papernet.Build()
	s := papernet.Scope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := n.AllPaths(s); len(got) != 4 {
			b.Fatalf("paths = %d", len(got))
		}
	}
}

func BenchmarkAllPathsWAN(b *testing.B) {
	for _, size := range []netgen.Size{netgen.Small, netgen.Medium} {
		w := netgen.Build(netgen.DefaultConfig(size, 1))
		b.Run(size.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(w.Net.AllPaths(w.Scope)) == 0 {
					b.Fatal("no paths")
				}
			}
		})
	}
}

func BenchmarkComputeFECs(b *testing.B) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Medium, 1))
	paths := w.Net.AllPaths(w.Scope)
	classes := w.Net.EnteringTraffic(w.Scope)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(topo.ComputeFECs(paths, classes)) == 0 {
			b.Fatal("no FECs")
		}
	}
}

func BenchmarkLPMLookup(b *testing.B) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Medium, 1))
	var dev *topo.Device
	for _, d := range w.Net.SortedDevices() {
		if len(d.FIB) > 50 {
			dev = d
			break
		}
	}
	if dev == nil {
		b.Fatal("no device with a big FIB")
	}
	r := rand.New(rand.NewSource(2))
	addrs := make([]uint32, 1024)
	for i := range addrs {
		addrs[i] = 10<<24 | r.Uint32()&0x00ffffff
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dev.LongestMatch(addrs[i%len(addrs)])
	}
}

func BenchmarkAtomizeClasses(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	var classes, cuts []header.Prefix
	for i := 0; i < 500; i++ {
		classes = append(classes, header.Prefix{
			Addr: 10<<24 | uint32(r.Intn(1<<16))<<8, Len: 24,
		}.Canonical())
		cuts = append(cuts, header.Prefix{
			Addr: 10<<24 | uint32(r.Intn(1<<12))<<12, Len: 8 + r.Intn(17),
		}.Canonical())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo.AtomizeClasses(classes, cuts)
	}
}

func BenchmarkClone(b *testing.B) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Medium, 1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Net.Clone()
	}
}

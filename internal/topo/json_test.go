package topo_test

import (
	"encoding/json"
	"testing"

	"jinjing/internal/papernet"
	"jinjing/internal/topo"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := papernet.Build()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	loaded := topo.NewNetwork()
	if err := json.Unmarshal(data, loaded); err != nil {
		t.Fatal(err)
	}
	// Same devices, ACLs, paths, and FEC structure.
	if len(loaded.Devices) != len(orig.Devices) {
		t.Fatalf("device count %d != %d", len(loaded.Devices), len(orig.Devices))
	}
	for name, od := range orig.Devices {
		ld, ok := loaded.Devices[name]
		if !ok {
			t.Fatalf("device %s missing", name)
		}
		if len(ld.FIB) != len(od.FIB) {
			t.Errorf("device %s FIB %d != %d", name, len(ld.FIB), len(od.FIB))
		}
		for iname, oi := range od.Interfaces {
			li := ld.Interfaces[iname]
			if li == nil {
				t.Fatalf("interface %s:%s missing", name, iname)
			}
			for _, dir := range []topo.Direction{topo.In, topo.Out} {
				oa, la := oi.ACL(dir), li.ACL(dir)
				if (oa == nil) != (la == nil) {
					t.Errorf("%s:%s %v ACL presence differs", name, iname, dir)
					continue
				}
				if oa != nil && oa.String() != la.String() {
					t.Errorf("%s:%s %v ACL differs:\n%v\n%v", name, iname, dir, oa, la)
				}
			}
		}
	}
	op := orig.AllPaths(papernet.Scope())
	lp := loaded.AllPaths(papernet.Scope())
	if len(op) != len(lp) {
		t.Fatalf("path counts differ: %d vs %d", len(op), len(lp))
	}
	seen := map[string]bool{}
	for _, p := range op {
		seen[p.String()] = true
	}
	for _, p := range lp {
		if !seen[p.String()] {
			t.Errorf("loaded path %v not in original", p)
		}
	}
	// Determinism: marshaling twice gives identical bytes.
	data2, _ := json.Marshal(orig)
	if string(data) != string(data2) {
		t.Error("marshaling is not deterministic")
	}
}

func TestJSONErrors(t *testing.T) {
	bad := []string{
		`{"devices":[{"name":"A","interfaces":[{"name":"1","in_acl":"frobnicate"}]}]}`,
		`{"devices":[{"name":"A","interfaces":[{"name":"1"}],"routes":[{"prefix":"999.0.0.0/8","out":"1"}]}]}`,
		`{"links":[{"from":"X:1","to":"Y:1"}]}`,
		`{not json`,
	}
	for _, s := range bad {
		n := topo.NewNetwork()
		if err := json.Unmarshal([]byte(s), n); err == nil {
			t.Errorf("Unmarshal(%q) should fail", s)
		}
	}
}

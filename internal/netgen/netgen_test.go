package netgen_test

import (
	"testing"

	"jinjing/internal/header"
	"jinjing/internal/netgen"
	"jinjing/internal/topo"
)

func TestBuildDeterministic(t *testing.T) {
	a := netgen.Build(netgen.DefaultConfig(netgen.Small, 42))
	b := netgen.Build(netgen.DefaultConfig(netgen.Small, 42))
	ap := a.Net.AllPaths(a.Scope)
	bp := b.Net.AllPaths(b.Scope)
	if len(ap) != len(bp) {
		t.Fatalf("same seed produced different path counts: %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i].String() != bp[i].String() {
			t.Fatalf("path %d differs: %v vs %v", i, ap[i], bp[i])
		}
	}
	c := netgen.Build(netgen.DefaultConfig(netgen.Small, 43))
	if len(c.Net.AllPaths(c.Scope)) == 0 {
		t.Fatal("different seed should still build a connected network")
	}
}

func TestLayerStructure(t *testing.T) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 1))
	cfg := w.Config
	if len(w.CoreNames) != cfg.Cores || len(w.AggNames) != cfg.Aggs || len(w.EdgeNames) != cfg.Edges {
		t.Fatalf("layer widths wrong: %d/%d/%d", len(w.CoreNames), len(w.AggNames), len(w.EdgeNames))
	}
	if len(w.Net.Devices) != cfg.Cores+cfg.Aggs+cfg.Edges {
		t.Fatalf("device count = %d", len(w.Net.Devices))
	}
	for _, en := range w.EdgeNames {
		if len(w.EdgePrefixes[en]) != cfg.PrefixesPerEdge {
			t.Fatalf("edge %s announces %d prefixes", en, len(w.EdgePrefixes[en]))
		}
	}
	// ACLs on every layer.
	if len(w.EdgeACLs) != cfg.Edges || len(w.AggACLs) != cfg.Aggs || len(w.CoreACLs) != cfg.Cores {
		t.Fatalf("ACL counts: %d/%d/%d", len(w.EdgeACLs), len(w.AggACLs), len(w.CoreACLs))
	}
}

func TestRoutingReachability(t *testing.T) {
	// Every announced prefix must be reachable: some path forwards it to
	// its owner's ext interface, from both another edge and a core
	// uplink.
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 7))
	paths := w.Net.AllPaths(w.Scope)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, en := range w.EdgeNames {
		for _, p := range w.EdgePrefixes[en] {
			fwd := topo.PathsForClass(paths, p)
			var fromEdge, fromCore bool
			for _, path := range fwd {
				if path.Dst().Device.Name != en {
					t.Fatalf("prefix %v of %s forwarded to %s via %v", p, en, path.Dst().ID(), path)
				}
				src := path.Src().Device.Name
				if src[0] == 'e' {
					fromEdge = true
				}
				if src[0] == 'c' {
					fromCore = true
				}
			}
			if !fromEdge || !fromCore {
				t.Errorf("prefix %v of %s: fromEdge=%v fromCore=%v (%d paths)",
					p, en, fromEdge, fromCore, len(fwd))
			}
		}
	}
	// External prefix must leave through core uplinks.
	ext := topo.PathsForClass(paths, w.External)
	if len(ext) == 0 {
		t.Fatal("external prefix unreachable")
	}
	for _, p := range ext {
		if p.Dst().Name != "up" {
			t.Errorf("external traffic should exit a core uplink, got %v", p)
		}
	}
}

func TestPerturb(t *testing.T) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 3))
	same := w.Perturb(9, 0)
	changed := w.Perturb(9, 50)
	var origRules, sameRules, changedDiff int
	for _, d := range w.Net.SortedDevices() {
		cd := changed.Devices[d.Name]
		sd := same.Devices[d.Name]
		for _, iface := range d.SortedInterfaces() {
			a := iface.ACL(topo.In)
			if a == nil {
				continue
			}
			origRules += len(a.Rules)
			sameRules += len(sd.Interfaces[iface.Name].ACL(topo.In).Rules)
			ca := cd.Interfaces[iface.Name].ACL(topo.In)
			if ca.String() != a.String() {
				changedDiff++
			}
		}
	}
	if sameRules != origRules {
		t.Error("0% perturbation must not change anything")
	}
	if changedDiff == 0 {
		t.Error("50% perturbation should change some ACLs")
	}
	// Determinism.
	p1 := w.Perturb(11, 5)
	p2 := w.Perturb(11, 5)
	for _, d := range p1.SortedDevices() {
		for _, iface := range d.SortedInterfaces() {
			a1, a2 := iface.ACL(topo.In), p2.Devices[d.Name].Interfaces[iface.Name].ACL(topo.In)
			if (a1 == nil) != (a2 == nil) {
				t.Fatal("perturb nondeterministic")
			}
			if a1 != nil && a1.String() != a2.String() {
				t.Fatal("perturb nondeterministic")
			}
		}
	}
}

func TestOpenSelections(t *testing.T) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 5))
	sel := w.OpenSelections(1, 2)
	if len(sel) != 2*len(w.EdgeNames) {
		t.Fatalf("selected %d prefixes, want %d", len(sel), 2*len(w.EdgeNames))
	}
	seen := map[header.Prefix]bool{}
	for _, p := range sel {
		if seen[p] {
			t.Errorf("duplicate selection %v", p)
		}
		seen[p] = true
	}
	// Capped at the announced count.
	all := w.OpenSelections(1, 1000)
	if len(all) != len(w.AllPrefixes()) {
		t.Errorf("over-selection should cap at announced prefixes")
	}
}

func TestBindings(t *testing.T) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 5))
	bs, err := netgen.Bindings(w.Net, w.AggACLs)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bs {
		if b.Iface.ACL(b.Dir) == nil {
			t.Errorf("binding %s has no ACL", b.ID())
		}
	}
	if _, err := netgen.Bindings(w.Net, []string{"nope"}); err == nil {
		t.Error("malformed ID should fail")
	}
	if _, err := netgen.Bindings(w.Net, []string{"zzz:1:in"}); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestScopeCoversAllDevices(t *testing.T) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Small, 5))
	for name := range w.Net.Devices {
		if !w.Scope.ContainsDevice(name) {
			t.Errorf("scope misses %s", name)
		}
	}
	borders := w.Net.BorderInterfaces(w.Scope)
	if len(borders) != w.Config.Edges+w.Config.Cores {
		t.Errorf("borders = %d, want ext+up = %d", len(borders), w.Config.Edges+w.Config.Cores)
	}
}

package netgen_test

import (
	"testing"

	"jinjing/internal/netgen"
)

func BenchmarkBuild(b *testing.B) {
	for _, size := range []netgen.Size{netgen.Small, netgen.Medium, netgen.Large} {
		b.Run(size.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				netgen.Build(netgen.DefaultConfig(size, int64(i)))
			}
		})
	}
}

func BenchmarkPerturb(b *testing.B) {
	w := netgen.Build(netgen.DefaultConfig(netgen.Medium, 1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Perturb(int64(i), 3)
	}
}

// Package netgen generates synthetic wide-area networks standing in for
// the Alibaba WAN sub-networks of the paper's evaluation (§8): layered
// core/aggregation/edge topologies at three scales (the paper's 8%, 30%,
// and 80% cuts), per-edge prefix announcements, destination-based
// forwarding with bounded ECMP, and multi-layer ACLs drawn from the
// announced prefix pool. Everything is seeded and deterministic.
//
// The generator also provides the evaluation's workload operators: rule
// perturbation (Figure 4a/4b), middle-to-lower-layer migration targets
// (Figure 4c), and per-device prefix selections for control-open intents
// (Figure 4d).
package netgen

import (
	"fmt"
	"math/rand"

	"jinjing/internal/acl"
	"jinjing/internal/header"
	"jinjing/internal/topo"
)

// Size selects one of the three evaluation scales.
type Size int

// The three network scales of §8 ("8%, 30%, and 80% of our WAN"), plus
// two extrapolated tiers (XLarge, Huge) past the paper's largest cut.
// The extrapolated tiers exist for the sharded-verification scaling
// study (FigShardCheck); generating them is cheap, but verifying them
// monolithically is not — experiments gate them behind
// JINJING_EXPERIMENTS_LARGE.
const (
	Small Size = iota
	Medium
	Large
	XLarge
	Huge
)

// String renders the scale name.
func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case XLarge:
		return "xlarge"
	case Huge:
		return "huge"
	default:
		return "large"
	}
}

// MarshalText serializes the scale by name, so JSON reports read
// "small"/"medium"/"large" rather than bare iota values.
func (s Size) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a scale name.
func (s *Size) UnmarshalText(text []byte) error {
	switch string(text) {
	case "small":
		*s = Small
	case "medium":
		*s = Medium
	case "large":
		*s = Large
	case "xlarge":
		*s = XLarge
	case "huge":
		*s = Huge
	default:
		return fmt.Errorf("netgen: unknown size %q", text)
	}
	return nil
}

// Config parameterizes the generator.
type Config struct {
	Size Size
	Seed int64

	Cores, Aggs, Edges int // layer widths
	AggsPerEdge        int // upstream aggs per edge device
	ECMPCores          int // cores each agg spreads over per prefix
	PrefixesPerEdge    int // /24s announced by each edge device
	RulesPerEdgeACL    int
	RulesPerAggACL     int
	RulesPerCoreACL    int
}

// DefaultConfig returns the calibrated parameters for a scale. Widths
// grow roughly 1 : 2.5 : 6 across the paper's 8% / 30% / 80% cuts;
// xlarge and huge continue the progression (~2× and ~3.3× large's edge
// count) with large's per-ACL rule density, so their cost growth is
// purely topological.
func DefaultConfig(size Size, seed int64) Config {
	c := Config{Size: size, Seed: seed, AggsPerEdge: 2, ECMPCores: 2}
	switch size {
	case Small:
		c.Cores, c.Aggs, c.Edges = 2, 4, 8
		c.PrefixesPerEdge = 4
		c.RulesPerEdgeACL, c.RulesPerAggACL, c.RulesPerCoreACL = 10, 14, 18
	case Medium:
		c.Cores, c.Aggs, c.Edges = 3, 8, 20
		c.PrefixesPerEdge = 5
		c.RulesPerEdgeACL, c.RulesPerAggACL, c.RulesPerCoreACL = 14, 24, 32
	case Large:
		c.Cores, c.Aggs, c.Edges = 4, 12, 48
		c.PrefixesPerEdge = 6
		c.RulesPerEdgeACL, c.RulesPerAggACL, c.RulesPerCoreACL = 18, 32, 48
	case XLarge:
		c.Cores, c.Aggs, c.Edges = 6, 16, 96
		c.PrefixesPerEdge = 6
		c.RulesPerEdgeACL, c.RulesPerAggACL, c.RulesPerCoreACL = 18, 32, 48
	case Huge:
		c.Cores, c.Aggs, c.Edges = 8, 24, 160
		c.PrefixesPerEdge = 6
		c.RulesPerEdgeACL, c.RulesPerAggACL, c.RulesPerCoreACL = 18, 32, 48
	}
	return c
}

// WAN is a generated network plus the metadata the workloads need.
type WAN struct {
	Config Config
	Net    *topo.Network
	Scope  *topo.Scope

	CoreNames, AggNames, EdgeNames []string
	// EdgePrefixes maps each edge device to the prefixes it announces.
	EdgePrefixes map[string][]header.Prefix
	// External is the prefix reachable through the core uplinks.
	External header.Prefix
	// ACLBindingIDs lists every generated ACL attachment per layer, as
	// "device:interface:dir" IDs.
	EdgeACLs, AggACLs, CoreACLs []string
}

// AllPrefixes returns every announced edge prefix, in device order.
func (w *WAN) AllPrefixes() []header.Prefix {
	var out []header.Prefix
	for _, e := range w.EdgeNames {
		out = append(out, w.EdgePrefixes[e]...)
	}
	return out
}

// Build generates the WAN.
//
// Topology: every edge connects to AggsPerEdge aggregation devices;
// every agg connects to every core. Cores carry an "up" uplink (border)
// to the external backbone; edges carry an "ext" interface (border) to
// the customer side. Each edge announces PrefixesPerEdge /24s under
// 10.<edge>/16; the backbone announces External (8.0.0.0/8).
//
// Forwarding: toward an edge prefix, edges send up (except the owner),
// aggs send down when the owner is attached, otherwise up across
// ECMPCores cores chosen per prefix; cores send down to the owner's
// aggs. Toward External, everything points up (cores to their uplink).
//
// ACLs (all ingress): edge "ext" interfaces filter traffic entering from
// customers; agg downlink interfaces filter traffic from edges; core
// "up" interfaces filter traffic entering from the backbone. Rules are
// permit/deny mixes over the announced pool with occasional source and
// destination-port constraints, ending in permit-all.
func Build(cfg Config) *WAN {
	r := rand.New(rand.NewSource(cfg.Seed))
	w := &WAN{
		Config:       cfg,
		Net:          topo.NewNetwork(),
		EdgePrefixes: map[string][]header.Prefix{},
		External:     header.MustParsePrefix("8.0.0.0/8"),
	}
	n := w.Net

	for i := 0; i < cfg.Cores; i++ {
		w.CoreNames = append(w.CoreNames, fmt.Sprintf("core%d", i))
	}
	for i := 0; i < cfg.Aggs; i++ {
		w.AggNames = append(w.AggNames, fmt.Sprintf("agg%d", i))
	}
	for i := 0; i < cfg.Edges; i++ {
		w.EdgeNames = append(w.EdgeNames, fmt.Sprintf("edge%d", i))
	}

	// Interfaces and links.
	for _, cn := range w.CoreNames {
		n.Device(cn).Interface("up")
	}
	for ai, an := range w.AggNames {
		agg := n.Device(an)
		for ci, cn := range w.CoreNames {
			core := n.Device(cn)
			aU := agg.Interface(fmt.Sprintf("u%d", ci))
			cD := core.Interface(fmt.Sprintf("d%d", ai))
			n.AddLink(aU, cD)
			n.AddLink(cD, aU)
		}
	}
	edgeAggs := map[string][]string{}
	for ei, en := range w.EdgeNames {
		edge := n.Device(en)
		edge.Interface("ext")
		for k := 0; k < cfg.AggsPerEdge; k++ {
			ai := (ei*cfg.AggsPerEdge + k) % cfg.Aggs
			an := w.AggNames[ai]
			agg := n.Device(an)
			eU := edge.Interface(fmt.Sprintf("u%d", k))
			aD := agg.Interface(fmt.Sprintf("d%d", ei))
			n.AddLink(eU, aD)
			n.AddLink(aD, eU)
			edgeAggs[en] = append(edgeAggs[en], an)
		}
	}

	// Prefix announcements: 10.<ei>.<j>.0/24.
	for ei, en := range w.EdgeNames {
		for j := 0; j < cfg.PrefixesPerEdge; j++ {
			p := header.Prefix{Addr: 10<<24 | uint32(ei)<<16 | uint32(j)<<8, Len: 24}
			w.EdgePrefixes[en] = append(w.EdgePrefixes[en], p)
		}
	}

	w.buildRoutes(r, edgeAggs)
	w.buildACLs(r)

	w.Scope = topo.NewScope(append(append(append([]string{}, w.CoreNames...), w.AggNames...), w.EdgeNames...)...)
	return w
}

func (w *WAN) buildRoutes(r *rand.Rand, edgeAggs map[string][]string) {
	cfg := w.Config
	n := w.Net

	// Owner lookup: prefix -> owning edge.
	owner := map[header.Prefix]string{}
	for en, ps := range w.EdgePrefixes {
		for _, p := range ps {
			owner[p] = en
		}
	}
	// Per-prefix ECMP core subset (stable per prefix).
	coreSubset := func(p header.Prefix) []int {
		k := cfg.ECMPCores
		if k > cfg.Cores {
			k = cfg.Cores
		}
		start := int(p.Addr>>8) % cfg.Cores
		out := make([]int, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, (start+i)%cfg.Cores)
		}
		return out
	}

	aggIdx := map[string]int{}
	for i, an := range w.AggNames {
		aggIdx[an] = i
	}
	attachedEdges := map[string][]string{} // agg -> edges below it
	for en, aggs := range edgeAggs {
		for _, an := range aggs {
			attachedEdges[an] = append(attachedEdges[an], en)
		}
	}

	for _, en := range w.EdgeNames {
		edge := n.Devices[en]
		for p, own := range owner {
			if own == en {
				edge.AddRoute(p, edge.Interfaces["ext"])
				continue
			}
			// Send up through one of the attached aggs (pick per prefix).
			ups := edgeAggs[en]
			k := int(p.Addr>>8) % len(ups)
			edge.AddRoute(p, edge.Interfaces[fmt.Sprintf("u%d", (k)%cfg.AggsPerEdge)])
		}
		edge.AddRoute(w.External, edge.Interfaces[fmt.Sprintf("u%d", r.Intn(cfg.AggsPerEdge))])
	}

	for _, an := range w.AggNames {
		agg := n.Devices[an]
		below := map[string]bool{}
		for _, en := range attachedEdges[an] {
			below[en] = true
		}
		for p, own := range owner {
			if below[own] {
				// Down to the owning edge.
				for iname, iface := range agg.Interfaces {
					_ = iname
					peer := n.Peer(iface)
					if peer != nil && peer.Device.Name == own {
						agg.AddRoute(p, iface)
					}
				}
				continue
			}
			for _, ci := range coreSubset(p) {
				agg.AddRoute(p, agg.Interfaces[fmt.Sprintf("u%d", ci)])
			}
		}
		agg.AddRoute(w.External, agg.Interfaces[fmt.Sprintf("u%d", r.Intn(cfg.Cores))])
	}

	for _, cn := range w.CoreNames {
		core := n.Devices[cn]
		for p, own := range owner {
			// Down to the owner's aggs.
			for _, an := range edgeAggs[own] {
				core.AddRoute(p, core.Interfaces[fmt.Sprintf("d%d", aggIdx[an])])
			}
		}
		core.AddRoute(w.External, core.Interfaces["up"])
	}
}

// srcPool is the small set of source prefixes rules draw from (management
// and office networks — matching production practice, where source
// constraints name a handful of privileged networks rather than arbitrary
// prefixes). Keeping this pool small also keeps the generate primitive's
// class space polynomial, the property the paper reports for its WAN
// ("the growth rate of AECs we experienced is at most polynomial").
var srcPool = []header.Prefix{
	header.MustParsePrefix("172.16.0.0/16"),
	header.MustParsePrefix("172.17.0.0/16"),
	header.MustParsePrefix("172.18.0.0/16"),
	header.MustParsePrefix("172.19.0.0/16"),
}

// servicePorts is the destination-port vocabulary of generated rules.
var servicePorts = []uint16{22, 443, 8080}

// randomRule draws a permit/deny rule over the announced pool; roughly a
// fifth carry a source constraint and an eighth a destination port.
func (w *WAN) randomRule(r *rand.Rand, pool []header.Prefix) acl.Rule {
	m := header.MatchAll
	dst := pool[r.Intn(len(pool))]
	if r.Intn(4) == 0 {
		dst = header.Prefix{Addr: dst.Addr, Len: 16}.Canonical() // aggregate
	}
	m.Dst = dst
	if r.Intn(5) == 0 {
		m.Src = srcPool[r.Intn(len(srcPool))]
	}
	if r.Intn(8) == 0 {
		lo := servicePorts[r.Intn(len(servicePorts))]
		m.DstPort = header.PortRange{Lo: lo, Hi: lo}
	}
	return acl.Rule{Action: acl.Action(r.Intn(3) > 0), Match: m}
}

func (w *WAN) makeACL(r *rand.Rand, pool []header.Prefix, rules int) *acl.ACL {
	a := &acl.ACL{Default: acl.Permit}
	for i := 0; i < rules; i++ {
		a.Rules = append(a.Rules, w.randomRule(r, pool))
	}
	return a
}

func (w *WAN) buildACLs(r *rand.Rand) {
	cfg := w.Config
	n := w.Net
	pool := w.AllPrefixes()

	for _, en := range w.EdgeNames {
		iface := n.Devices[en].Interfaces["ext"]
		iface.SetACL(topo.In, w.makeACL(r, pool, cfg.RulesPerEdgeACL))
		w.EdgeACLs = append(w.EdgeACLs, en+":ext:in")
	}
	for _, an := range w.AggNames {
		agg := n.Devices[an]
		// One downlink ACL per agg (the middle layer the migration moves).
		for _, iface := range agg.SortedInterfaces() {
			if len(iface.Name) > 0 && iface.Name[0] == 'd' {
				iface.SetACL(topo.In, w.makeACL(r, pool, cfg.RulesPerAggACL))
				w.AggACLs = append(w.AggACLs, an+":"+iface.Name+":in")
				break
			}
		}
	}
	for _, cn := range w.CoreNames {
		iface := n.Devices[cn].Interfaces["up"]
		iface.SetACL(topo.In, w.makeACL(r, pool, cfg.RulesPerCoreACL))
		w.CoreACLs = append(w.CoreACLs, cn+":up:in")
	}
}

// Perturb clones the network and randomly rewrites the given percentage
// of rules in every ACL (flip, delete, or replace) — the update-plan
// generator of Figures 4a and 4b. A percent of 0 still clones.
func (w *WAN) Perturb(seed int64, percent float64) *topo.Network {
	r := rand.New(rand.NewSource(seed))
	out := w.Net.Clone()
	pool := w.AllPrefixes()
	for _, d := range out.SortedDevices() {
		for _, iface := range d.SortedInterfaces() {
			for _, dir := range []topo.Direction{topo.In, topo.Out} {
				a := iface.ACL(dir)
				if a == nil {
					continue
				}
				for i := 0; i < len(a.Rules); i++ {
					if r.Float64()*100 >= percent {
						continue
					}
					switch r.Intn(3) {
					case 0: // flip action
						a.Rules[i].Action = !a.Rules[i].Action
					case 1: // delete
						a.Rules = append(a.Rules[:i], a.Rules[i+1:]...)
						i--
					case 2: // replace with a fresh rule
						a.Rules[i] = w.randomRule(r, pool)
					}
				}
			}
		}
	}
	return out
}

// Bindings resolves binding IDs against a network snapshot.
func Bindings(n *topo.Network, ids []string) ([]topo.ACLBinding, error) {
	out := make([]topo.ACLBinding, 0, len(ids))
	for _, id := range ids {
		b, err := lookup(n, id)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

func lookup(n *topo.Network, id string) (topo.ACLBinding, error) {
	dir := topo.In
	base := id
	switch {
	case len(id) > 4 && id[len(id)-4:] == ":out":
		dir = topo.Out
		base = id[:len(id)-4]
	case len(id) > 3 && id[len(id)-3:] == ":in":
		base = id[:len(id)-3]
	default:
		return topo.ACLBinding{}, fmt.Errorf("netgen: malformed binding ID %q", id)
	}
	iface, err := n.LookupInterface(base)
	if err != nil {
		return topo.ACLBinding{}, err
	}
	return topo.ACLBinding{Iface: iface, Dir: dir}, nil
}

// OpenSelections picks k announced prefixes per edge device for the
// Figure 4d control-open workload, deterministically per seed.
func (w *WAN) OpenSelections(seed int64, perDevice int) []header.Prefix {
	r := rand.New(rand.NewSource(seed))
	var out []header.Prefix
	for _, en := range w.EdgeNames {
		ps := w.EdgePrefixes[en]
		k := perDevice
		if k > len(ps) {
			k = len(ps)
		}
		perm := r.Perm(len(ps))
		for i := 0; i < k; i++ {
			out = append(out, ps[perm[i]])
		}
	}
	return out
}

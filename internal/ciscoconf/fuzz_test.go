package ciscoconf

import (
	"errors"
	"testing"
)

// FuzzParseCisco exercises the IOS-dialect parser: no input may panic
// it, and every rejection must be a structured *ParseError. The on-disk
// corpus lives in testdata/fuzz/FuzzParseCisco.
func FuzzParseCisco(f *testing.F) {
	seeds := []string{
		"hostname R\nip access-list extended X\n  permit ip any any\n",
		"hostname R\ninterface e0\n  ip access-group X in\n",
		"hostname R\nip route 10.0.0.0 255.0.0.0 e0\n",
		"hostname R\nip access-list extended X\n  deny tcp 10.0.0.0 0.255.255.255 any eq 443\n",
		"! comment only",
		"hostname",
		"  orphan indent",
		"!000000000\nip",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := Parse(src)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse returned unstructured error %T: %v", err, err)
			}
			if pe.Line < 0 {
				t.Fatalf("ParseError with negative line: %+v", pe)
			}
			return
		}
		if cfg.Hostname == "" {
			t.Fatal("accepted config without hostname")
		}
	})
}

package ciscoconf

import (
	"testing"
)

// FuzzParse exercises the IOS-dialect parser for panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"hostname R\nip access-list extended X\n  permit ip any any\n",
		"hostname R\ninterface e0\n  ip access-group X in\n",
		"hostname R\nip route 10.0.0.0 255.0.0.0 e0\n",
		"hostname R\nip access-list extended X\n  deny tcp 10.0.0.0 0.255.255.255 any eq 443\n",
		"! comment only",
		"hostname",
		"  orphan indent",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		Parse(src) // must not panic
	})
}

package ciscoconf_test

import (
	"errors"
	"strings"
	"testing"

	"jinjing/internal/acl"
	"jinjing/internal/ciscoconf"
	"jinjing/internal/core"
	"jinjing/internal/header"
	"jinjing/internal/topo"
)

const gwConfig = `
hostname G
!
ip access-list extended PROTECT
  deny   ip any 10.2.0.0 0.0.255.255
  permit ip any any
!
interface up
  description to the WAN
  ip access-group PROTECT in
interface d1
interface d2
!
ip route 10.1.0.0 255.255.0.0 d1
ip route 10.2.0.0 255.255.0.0 d2
ip route 8.0.0.0 255.0.0.0 up
end
`

func TestParseDevice(t *testing.T) {
	cfg, err := ciscoconf.Parse(gwConfig)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname != "G" {
		t.Fatalf("hostname = %q", cfg.Hostname)
	}
	a := cfg.ACLs["PROTECT"]
	if a == nil || len(a.Rules) != 2 || a.Default != acl.Deny {
		t.Fatalf("ACL = %v", a)
	}
	if a.Rules[0].Action != acl.Deny ||
		a.Rules[0].Match.Dst != header.MustParsePrefix("10.2.0.0/16") {
		t.Fatalf("rule 0 = %v", a.Rules[0])
	}
	if !a.Rules[1].Match.IsAll() || a.Rules[1].Action != acl.Permit {
		t.Fatalf("rule 1 = %v", a.Rules[1])
	}
	if cfg.Bindings["up"][topo.In] != "PROTECT" {
		t.Fatalf("binding = %v", cfg.Bindings)
	}
	if len(cfg.Routes) != 3 || cfg.Routes[0].Prefix != header.MustParsePrefix("10.1.0.0/16") ||
		cfg.Routes[0].Iface != "d1" {
		t.Fatalf("routes = %v", cfg.Routes)
	}
}

func TestParseRuleForms(t *testing.T) {
	src := `hostname X
ip access-list extended T
  permit tcp 10.0.0.0 0.255.255.255 host 192.168.1.1 eq 443
  deny udp any range 1000 2000 any
  permit ip any 10.3.0.0 0.0.255.255
  deny tcp any any gt 1023
  permit tcp any any lt 1024
  deny 89 any any
`
	cfg, err := ciscoconf.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rules := cfg.ACLs["T"].Rules
	if len(rules) != 6 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	r0 := rules[0].Match
	if r0.Src != header.MustParsePrefix("10.0.0.0/8") ||
		r0.Dst != header.MustParsePrefix("192.168.1.1/32") ||
		r0.DstPort != (header.PortRange{Lo: 443, Hi: 443}) ||
		r0.Proto != header.Proto(header.ProtoTCP) {
		t.Fatalf("rule 0 = %v", rules[0])
	}
	if rules[1].Match.SrcPort != (header.PortRange{Lo: 1000, Hi: 2000}) {
		t.Fatalf("rule 1 sport = %v", rules[1].Match.SrcPort)
	}
	if rules[3].Match.DstPort != (header.PortRange{Lo: 1024, Hi: 65535}) {
		t.Fatalf("rule 3 gt = %v", rules[3].Match.DstPort)
	}
	if rules[4].Match.DstPort != (header.PortRange{Lo: 0, Hi: 1023}) {
		t.Fatalf("rule 4 lt = %v", rules[4].Match.DstPort)
	}
	if rules[5].Match.Proto != header.Proto(89) {
		t.Fatalf("rule 5 proto = %v", rules[5].Match.Proto)
	}
}

// TestParseErrorStructured pins the structured-error contract: every
// rejection is a *ParseError carrying the offending 1-based line (0 for
// file-level errors such as a missing hostname), and the rendered message
// keeps the "ciscoconf: line N:" prefix tools grep for.
func TestParseErrorStructured(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
	}{
		{"bad statement", "hostname X\nfrobnicate\n", 2},
		{"bad mask", "hostname X\nip access-list extended T\n  permit ip 10.0.0.0 0.255.0.255 any\n", 3},
		{"orphan indent", "hostname X\n  permit ip any any\n", 2},
		{"missing hostname", "interface e0\n", 0},
	}
	for _, c := range cases {
		_, err := ciscoconf.Parse(c.src)
		if err == nil {
			t.Fatalf("%s: Parse accepted %q", c.name, c.src)
		}
		var pe *ciscoconf.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: Parse returned %T, want *ParseError: %v", c.name, err, err)
		}
		if pe.Line != c.line {
			t.Errorf("%s: line %d, want %d (%v)", c.name, pe.Line, c.line, err)
		}
		if c.line > 0 && !strings.Contains(err.Error(), "ciscoconf: line ") {
			t.Errorf("%s: message lost its prefix: %v", c.name, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no hostname":     "interface e0\n",
		"bad statement":   "hostname X\nfrobnicate\n",
		"bad mask":        "hostname X\nip access-list extended T\n  permit ip 10.0.0.0 0.255.0.255 any\n",
		"bad route":       "hostname X\nip route 10.0.0.0 255.0.0.0\n",
		"orphan indent":   "hostname X\n  permit ip any any\n",
		"bad action":      "hostname X\nip access-list extended T\n  allow ip any any\n",
		"bad proto":       "hostname X\nip access-list extended T\n  permit gre any any\n",
		"trailing tokens": "hostname X\nip access-list extended T\n  permit ip any any extra\n",
		"bad dir":         "hostname X\ninterface e0\n  ip access-group T sideways\n",
	}
	for name, src := range bad {
		if _, err := ciscoconf.Parse(src); err == nil {
			t.Errorf("%s: Parse should fail", name)
		}
	}
}

const r1Config = `
hostname R1
interface u
interface h
ip route 10.1.0.0 255.255.0.0 h
ip route 10.2.0.0 255.255.0.0 u
ip route 8.0.0.0 255.0.0.0 u
`

const r2Config = `
hostname R2
interface u
interface h
ip route 10.2.0.0 255.255.0.0 h
ip route 10.1.0.0 255.255.0.0 u
ip route 8.0.0.0 255.0.0.0 u
`

func buildCellFromConfigs(t *testing.T) *topo.Network {
	t.Helper()
	var cfgs []*ciscoconf.DeviceConfig
	for _, text := range []string{gwConfig, r1Config, r2Config} {
		cfg, err := ciscoconf.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	links := []ciscoconf.Link{
		{FromDevice: "G", FromIface: "d1", ToDevice: "R1", ToIface: "u"},
		{FromDevice: "R1", FromIface: "u", ToDevice: "G", ToIface: "d1"},
		{FromDevice: "G", FromIface: "d2", ToDevice: "R2", ToIface: "u"},
		{FromDevice: "R2", FromIface: "u", ToDevice: "G", ToIface: "d2"},
	}
	n, err := ciscoconf.BuildNetwork(cfgs, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildNetworkAndCheckEndToEnd(t *testing.T) {
	// Full pipeline: IOS configs -> network -> a bad relocation -> check
	// catches it. (The same cell as §7 Scenario 2, ingested from configs.)
	before := buildCellFromConfigs(t)
	scope := topo.NewScope("G", "R1", "R2").WithEntries("G:up", "R1:h", "R2:h")

	after := before.Clone()
	up, _ := after.LookupInterface("G:up")
	moved := up.ACL(topo.In).Clone()
	up.SetACL(topo.In, acl.PermitAll())
	for _, name := range []string{"G:d1", "G:d2"} {
		i, _ := after.LookupInterface(name)
		i.SetACL(topo.Out, moved.Clone())
	}

	e := core.New(before, after, scope, core.DefaultOptions())
	if res := e.Check(); res.Consistent {
		t.Fatal("relocation side effect must be caught on config-ingested network")
	}
}

func TestBuildNetworkErrors(t *testing.T) {
	cfg, _ := ciscoconf.Parse("hostname X\ninterface e0\n  ip access-group NOPE in\n")
	if _, err := ciscoconf.BuildNetwork([]*ciscoconf.DeviceConfig{cfg}, nil); err == nil {
		t.Error("unknown ACL reference should fail")
	}
	ok, _ := ciscoconf.Parse("hostname X\ninterface e0\n")
	if _, err := ciscoconf.BuildNetwork([]*ciscoconf.DeviceConfig{ok},
		[]ciscoconf.Link{{FromDevice: "X", FromIface: "nope", ToDevice: "X", ToIface: "e0"}}); err == nil {
		t.Error("unknown link interface should fail")
	}
}

func TestFormatACLRoundTrip(t *testing.T) {
	a := &acl.ACL{
		Default: acl.Permit,
		Rules: []acl.Rule{
			{Action: acl.Deny, Match: header.Match{
				Src: header.MustParsePrefix("10.0.0.0/8"), Dst: header.MustParsePrefix("10.2.0.0/16"),
				SrcPort: header.AnyPort, DstPort: header.PortRange{Lo: 443, Hi: 443},
				Proto: header.Proto(header.ProtoTCP)}},
			{Action: acl.Permit, Match: header.Match{
				Src: header.AnyPrefix, Dst: header.MustParsePrefix("192.168.1.1/32"),
				SrcPort: header.PortRange{Lo: 1000, Hi: 2000}, DstPort: header.AnyPort,
				Proto: header.Proto(header.ProtoUDP)}},
		},
	}
	text := ciscoconf.FormatACL("SYNTH", a)
	if !strings.Contains(text, "deny tcp 10.0.0.0 0.255.255.255 10.2.0.0 0.0.255.255 eq 443") {
		t.Fatalf("formatted:\n%s", text)
	}
	// Parse it back and compare decision models.
	cfg, err := ciscoconf.Parse("hostname X\n" + text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	back := cfg.ACLs["SYNTH"]
	// The explicit trailing catch-all becomes a rule; semantics must be
	// identical.
	if !acl.Equivalent(a, back) {
		t.Fatalf("round trip changed the decision model:\n%v\nvs\n%v", a, back)
	}
}

// Package ciscoconf parses a Cisco-IOS-flavored router configuration
// dialect into the topo network model. The paper's deployment section
// (§7) names vendor configuration formats as a main data-source
// challenge; this package is the corresponding ingestion substrate, so
// the engine can consume device configs directly instead of the JSON
// schema.
//
// Supported statements (one file per device):
//
//	hostname <name>
//
//	ip access-list extended <name>
//	  permit ip any any
//	  deny   ip any 10.2.0.0 0.0.255.255
//	  permit tcp 10.0.0.0 0.255.255.255 host 192.168.1.1 eq 443
//	  deny   udp any range 1000 2000 any
//	  permit ip any 10.3.0.0 0.0.255.255
//
//	interface <name>
//	  ip access-group <acl-name> in|out
//	  description ...            (ignored)
//
//	ip route <addr> <mask> <interface-name>
//
// Wildcard masks follow IOS conventions (0.0.0.255 = /24); only
// contiguous wildcards are accepted. "host A" means A/32; "any" matches
// everything. Port qualifiers: "eq N", "range N M", "gt N", "lt N".
// Comments start with "!".
package ciscoconf

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"jinjing/internal/acl"
	"jinjing/internal/header"
	"jinjing/internal/topo"
)

// DeviceConfig is one parsed device configuration.
type DeviceConfig struct {
	Hostname string
	ACLs     map[string]*acl.ACL
	// Bindings maps interface name -> direction -> ACL name.
	Bindings map[string]map[topo.Direction]string
	// Routes are static routes: prefix via named interface.
	Routes []StaticRoute
}

// StaticRoute is one "ip route" statement.
type StaticRoute struct {
	Prefix header.Prefix
	Iface  string
}

// ParseError is the structured syntax error of the configuration
// parser: the 1-based line the parser stopped at (0 when the error is
// file-level, e.g. a missing hostname) and a message. Every error
// returned by Parse is a *ParseError.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("ciscoconf: line %d: %s", e.Line, e.Msg)
	}
	return "ciscoconf: " + e.Msg
}

// Parse parses one device configuration.
func Parse(text string) (*DeviceConfig, error) {
	cfg := &DeviceConfig{
		ACLs:     map[string]*acl.ACL{},
		Bindings: map[string]map[topo.Direction]string{},
	}
	var curACL *acl.ACL
	var curIface string

	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = line[:i]
		}
		indented := strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t")
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return &ParseError{Line: lineNo + 1, Msg: fmt.Sprintf(format, args...)}
		}

		if !indented {
			curACL, curIface = nil, ""
			switch fields[0] {
			case "hostname":
				if len(fields) != 2 {
					return nil, errf("hostname wants one argument")
				}
				cfg.Hostname = fields[1]
			case "ip":
				if len(fields) < 2 {
					return nil, errf("bare ip statement")
				}
				switch {
				case len(fields) >= 4 && fields[1] == "access-list" && fields[2] == "extended":
					a := &acl.ACL{Default: acl.Deny} // IOS ACLs end in implicit deny
					cfg.ACLs[fields[3]] = a
					curACL = a
				case fields[1] == "route" && len(fields) != 5:
					return nil, errf("ip route wants <addr> <mask> <interface>")
				case len(fields) == 5 && fields[1] == "route":
					p, err := parseAddrMask(fields[2], fields[3], false)
					if err != nil {
						return nil, errf("%v", err)
					}
					cfg.Routes = append(cfg.Routes, StaticRoute{Prefix: p, Iface: fields[4]})
				default:
					return nil, errf("unsupported ip statement %q", line)
				}
			case "interface":
				if len(fields) != 2 {
					return nil, errf("interface wants one argument")
				}
				curIface = fields[1]
			case "end":
				// no-op
			default:
				return nil, errf("unsupported statement %q", fields[0])
			}
			continue
		}

		// Indented: body of an ACL or interface block.
		switch {
		case curACL != nil:
			rule, err := parseRuleLine(fields)
			if err != nil {
				return nil, errf("%v", err)
			}
			curACL.Rules = append(curACL.Rules, rule)
		case curIface != "":
			switch fields[0] {
			case "ip":
				if len(fields) == 4 && fields[1] == "access-group" {
					dir := topo.In
					switch fields[3] {
					case "in":
					case "out":
						dir = topo.Out
					default:
						return nil, errf("access-group direction must be in/out")
					}
					if cfg.Bindings[curIface] == nil {
						cfg.Bindings[curIface] = map[topo.Direction]string{}
					}
					cfg.Bindings[curIface][dir] = fields[2]
				} else {
					return nil, errf("unsupported interface ip statement %q", line)
				}
			case "description", "no", "shutdown":
				// ignored
			default:
				return nil, errf("unsupported interface statement %q", fields[0])
			}
		default:
			return nil, errf("indented line outside a block: %q", line)
		}
	}
	if cfg.Hostname == "" {
		return nil, &ParseError{Msg: "missing hostname"}
	}
	return cfg, nil
}

// parseRuleLine parses "permit|deny <proto> <src> [ports] <dst> [ports]".
func parseRuleLine(fields []string) (acl.Rule, error) {
	var r acl.Rule
	switch fields[0] {
	case "permit":
		r.Action = acl.Permit
	case "deny":
		r.Action = acl.Deny
	default:
		return r, fmt.Errorf("rule must start with permit/deny, got %q", fields[0])
	}
	if len(fields) < 2 {
		return r, fmt.Errorf("rule missing protocol")
	}
	m := header.MatchAll
	switch fields[1] {
	case "ip":
	case "tcp":
		m.Proto = header.Proto(header.ProtoTCP)
	case "udp":
		m.Proto = header.Proto(header.ProtoUDP)
	case "icmp":
		m.Proto = header.Proto(header.ProtoICMP)
	default:
		n, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return r, fmt.Errorf("unknown protocol %q", fields[1])
		}
		m.Proto = header.Proto(uint8(n))
	}
	rest := fields[2:]
	var err error
	m.Src, m.SrcPort, rest, err = parseEndpoint(rest)
	if err != nil {
		return r, fmt.Errorf("source: %v", err)
	}
	m.Dst, m.DstPort, rest, err = parseEndpoint(rest)
	if err != nil {
		return r, fmt.Errorf("destination: %v", err)
	}
	if len(rest) > 0 {
		return r, fmt.Errorf("trailing tokens %v", rest)
	}
	r.Match = m
	return r, nil
}

// parseEndpoint consumes an address spec plus optional port qualifier.
func parseEndpoint(fields []string) (header.Prefix, header.PortRange, []string, error) {
	if len(fields) == 0 {
		return header.Prefix{}, header.AnyPort, nil, fmt.Errorf("missing address")
	}
	var p header.Prefix
	switch fields[0] {
	case "any":
		p = header.AnyPrefix
		fields = fields[1:]
	case "host":
		if len(fields) < 2 {
			return p, header.AnyPort, nil, fmt.Errorf("host wants an address")
		}
		hp, err := header.ParsePrefix(fields[1])
		if err != nil {
			return p, header.AnyPort, nil, err
		}
		p = hp
		fields = fields[2:]
	default:
		if len(fields) < 2 {
			return p, header.AnyPort, nil, fmt.Errorf("address wants a wildcard mask")
		}
		ap, err := parseAddrMask(fields[0], fields[1], true)
		if err != nil {
			return p, header.AnyPort, nil, err
		}
		p = ap
		fields = fields[2:]
	}
	ports := header.AnyPort
	if len(fields) > 0 {
		switch fields[0] {
		case "eq":
			if len(fields) < 2 {
				return p, ports, nil, fmt.Errorf("eq wants a port")
			}
			n, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil {
				return p, ports, nil, fmt.Errorf("bad port %q", fields[1])
			}
			ports = header.PortRange{Lo: uint16(n), Hi: uint16(n)}
			fields = fields[2:]
		case "range":
			if len(fields) < 3 {
				return p, ports, nil, fmt.Errorf("range wants two ports")
			}
			lo, err1 := strconv.ParseUint(fields[1], 10, 16)
			hi, err2 := strconv.ParseUint(fields[2], 10, 16)
			if err1 != nil || err2 != nil || hi < lo {
				return p, ports, nil, fmt.Errorf("bad range %q %q", fields[1], fields[2])
			}
			ports = header.PortRange{Lo: uint16(lo), Hi: uint16(hi)}
			fields = fields[3:]
		case "gt":
			if len(fields) < 2 {
				return p, ports, nil, fmt.Errorf("gt wants a port")
			}
			n, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil || n >= 65535 {
				return p, ports, nil, fmt.Errorf("bad port %q", fields[1])
			}
			ports = header.PortRange{Lo: uint16(n) + 1, Hi: 65535}
			fields = fields[2:]
		case "lt":
			if len(fields) < 2 {
				return p, ports, nil, fmt.Errorf("lt wants a port")
			}
			n, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil || n == 0 {
				return p, ports, nil, fmt.Errorf("bad port %q", fields[1])
			}
			ports = header.PortRange{Lo: 0, Hi: uint16(n) - 1}
			fields = fields[2:]
		}
	}
	return p, ports, fields, nil
}

// parseAddrMask parses an address with either a wildcard mask (IOS ACL
// style, wildcard=true) or a subnet mask ("ip route" style).
func parseAddrMask(addrStr, maskStr string, wildcard bool) (header.Prefix, error) {
	addr, err := parseIPv4(addrStr)
	if err != nil {
		return header.Prefix{}, err
	}
	mask, err := parseIPv4(maskStr)
	if err != nil {
		return header.Prefix{}, err
	}
	if wildcard {
		mask = ^mask
	}
	// The mask must be contiguous ones from the top.
	ones := bits.OnesCount32(mask)
	if mask != 0 && bits.LeadingZeros32(^mask) != ones {
		return header.Prefix{}, fmt.Errorf("non-contiguous mask %q", maskStr)
	}
	return header.Prefix{Addr: addr, Len: ones}.Canonical(), nil
}

func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	var out uint32
	for _, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("bad IPv4 octet in %q", s)
		}
		out = out<<8 | uint32(n)
	}
	return out, nil
}

// Link declares one directed cable for BuildNetwork.
type Link struct {
	FromDevice, FromIface string
	ToDevice, ToIface     string
}

// BuildNetwork assembles parsed device configs plus a cable plan into a
// topo.Network: interfaces are created, ACLs bound, and static routes
// installed.
func BuildNetwork(configs []*DeviceConfig, links []Link) (*topo.Network, error) {
	n := topo.NewNetwork()
	for _, cfg := range configs {
		d := n.Device(cfg.Hostname)
		for iname, dirs := range cfg.Bindings {
			iface := d.Interface(iname)
			for dir, aclName := range dirs {
				a, ok := cfg.ACLs[aclName]
				if !ok {
					return nil, fmt.Errorf("ciscoconf: %s: interface %s references unknown ACL %q",
						cfg.Hostname, iname, aclName)
				}
				iface.SetACL(dir, a.Clone())
			}
		}
		for _, rt := range cfg.Routes {
			d.AddRoute(rt.Prefix, d.Interface(rt.Iface))
		}
	}
	for _, l := range links {
		from, err := n.LookupInterface(l.FromDevice + ":" + l.FromIface)
		if err != nil {
			return nil, fmt.Errorf("ciscoconf: link: %v", err)
		}
		to, err := n.LookupInterface(l.ToDevice + ":" + l.ToIface)
		if err != nil {
			return nil, fmt.Errorf("ciscoconf: link: %v", err)
		}
		n.AddLink(from, to)
	}
	return n, nil
}

// FormatACL renders an ACL back into IOS syntax (the inverse of the rule
// parser), for emitting synthesized ACLs as device configuration.
func FormatACL(name string, a *acl.ACL) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ip access-list extended %s\n", name)
	for _, r := range a.Rules {
		b.WriteString("  " + formatRule(r) + "\n")
	}
	// The explicit catch-all for the ACL's default.
	if a.Default == acl.Permit {
		b.WriteString("  permit ip any any\n")
	} else {
		b.WriteString("  deny ip any any\n")
	}
	return b.String()
}

func formatRule(r acl.Rule) string {
	parts := []string{r.Action.String()}
	m := r.Match
	switch {
	case m.Proto.IsAny():
		parts = append(parts, "ip")
	case m.Proto == header.Proto(header.ProtoTCP):
		parts = append(parts, "tcp")
	case m.Proto == header.Proto(header.ProtoUDP):
		parts = append(parts, "udp")
	case m.Proto == header.Proto(header.ProtoICMP):
		parts = append(parts, "icmp")
	default:
		parts = append(parts, strconv.Itoa(int(m.Proto.Lo)))
	}
	parts = append(parts, formatEndpoint(m.Src, m.SrcPort)...)
	parts = append(parts, formatEndpoint(m.Dst, m.DstPort)...)
	return strings.Join(parts, " ")
}

func formatEndpoint(p header.Prefix, ports header.PortRange) []string {
	var parts []string
	switch {
	case p.IsAny():
		parts = append(parts, "any")
	case p.Len == 32:
		parts = append(parts, "host", ipString(p.Addr))
	default:
		wildcard := ^(^uint32(0) << (32 - p.Len))
		parts = append(parts, ipString(p.Addr), ipString(wildcard))
	}
	switch {
	case ports.IsAny():
	case ports.Lo == ports.Hi:
		parts = append(parts, "eq", strconv.Itoa(int(ports.Lo)))
	default:
		parts = append(parts, "range", strconv.Itoa(int(ports.Lo)), strconv.Itoa(int(ports.Hi)))
	}
	return parts
}

func ipString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24&0xff, a>>16&0xff, a>>8&0xff, a&0xff)
}

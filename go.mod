module jinjing

go 1.22

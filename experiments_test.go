// Experiment tables: running `go test -run TestExperiment -v` prints the
// paper-style rows for every figure and table of §8 (the same data the
// benchmarks measure, in tabular form). These are full evaluation runs —
// skipped under -short.
package jinjing_test

import (
	"os"
	"testing"

	"jinjing/internal/experiments"
	"jinjing/internal/netgen"
)

func experimentSizes(t *testing.T) []netgen.Size {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment tables skipped in -short mode")
	}
	// The large-WAN rows push the package past go test's default 10-minute
	// timeout on slow machines; they are opt-in via the environment (set by
	// `make test-full`) and always covered by the weekly CI run.
	if os.Getenv("JINJING_EXPERIMENTS_LARGE") != "" {
		return allSizes
	}
	return allSizes[:2]
}

func TestExperimentFig4a(t *testing.T) {
	sizes := experimentSizes(t)
	rows := experiments.Fig4aCheck(sizes)
	experiments.PrintCheckRows(os.Stdout, rows)
	// Sanity: the 0%% control must pass, every perturbed plan must be
	// flagged.
	for _, r := range rows {
		if r.PerturbPct == 0 && !r.Consistent {
			t.Errorf("%s/%s: unchanged plan reported inconsistent", r.Size, r.Mode)
		}
		if r.PerturbPct > 0 && r.Consistent {
			t.Errorf("%s/%v%%/%s: perturbed plan reported consistent", r.Size, r.PerturbPct, r.Mode)
		}
	}
}

func TestExperimentFig4b(t *testing.T) {
	sizes := experimentSizes(t)
	modes := []bool{true, false}
	if !testing.Short() && len(sizes) == 3 {
		// Run the basic mode on small/medium only (see EXPERIMENTS.md);
		// large basic is reported as a one-off in documentation.
		rows := experiments.Fig4bFix(sizes[:2], modes)
		rows = append(rows, experiments.Fig4bFix(sizes[2:], []bool{true})...)
		experiments.PrintFixRows(os.Stdout, rows)
		for _, r := range rows {
			if !r.Verified {
				t.Errorf("%s/%v%%/%s: fix did not verify", r.Size, r.PerturbPct, r.Mode)
			}
		}
		return
	}
	rows := experiments.Fig4bFix(sizes, modes)
	experiments.PrintFixRows(os.Stdout, rows)
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s/%v%%/%s: fix did not verify", r.Size, r.PerturbPct, r.Mode)
		}
	}
}

func TestExperimentFig4bNoExpansionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tables skipped in -short mode")
	}
	row := experiments.Fig4bNoExpansion(netgen.Small, 2000)
	experiments.PrintFixRows(os.Stdout,
		[]experiments.FixRow{row})
	if row.Verified {
		t.Error("per-packet fixing should not converge within the cap")
	}
	if row.Neighborhoods < 2000 {
		t.Errorf("expected the cap to bind, got %d iterations", row.Neighborhoods)
	}
}

func TestExperimentFig4c(t *testing.T) {
	sizes := experimentSizes(t)
	rows := experiments.Fig4cGenerate(sizes[:2], []bool{true, false})
	rows = append(rows, experiments.Fig4cGenerate(sizes[2:], []bool{true})...)
	experiments.PrintGenerateRows(os.Stdout, "Figure 4c — generate migration plan", rows)
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s/%s: migration plan did not verify", r.Size, r.Mode)
		}
	}
	// Shape check: optimization shortens the generated ACLs.
	bySize := map[netgen.Size]map[string]int{}
	for _, r := range rows {
		if bySize[r.Size] == nil {
			bySize[r.Size] = map[string]int{}
		}
		bySize[r.Size][r.Mode] = r.RulesSimpl
	}
	for size, m := range bySize {
		opt, hasOpt := m["optimized"]
		unopt, hasUnopt := m["unoptimized"]
		if hasOpt && hasUnopt && opt > unopt {
			t.Errorf("%s: optimized output longer than unoptimized (%d > %d)", size, opt, unopt)
		}
	}
}

func TestExperimentFig4d(t *testing.T) {
	sizes := experimentSizes(t)
	rows := experiments.Fig4dOpen(sizes, []int{1, 2, 4})
	experiments.PrintGenerateRows(os.Stdout, "Figure 4d — reachability control (open) + generate", rows)
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s/%s: open plan did not verify", r.Size, r.Label)
		}
	}
}

func TestExperimentTable5(t *testing.T) {
	sizes := experimentSizes(t)
	rows := experiments.Table5Programs(sizes)
	experiments.PrintTable5(os.Stdout, rows)
	// Shape: programs stay small (tens of lines, not hundreds) except the
	// open-k programs, which grow with the number of control intents.
	for _, r := range rows {
		if r.Experiment == "migration" && r.Lines > 20 {
			t.Errorf("%s migration program unexpectedly long: %d lines", r.Size, r.Lines)
		}
		if r.Lines <= 0 {
			t.Errorf("%s %s: nonpositive line count", r.Size, r.Experiment)
		}
	}
}

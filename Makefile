# Jinjing reproduction — common development targets.

GO ?= go

.PHONY: all build test test-full race lint bench experiments examples vet fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fast suite: unit + property tests, no evaluation tables.
test:
	$(GO) test -short ./...

# Full suite: everything, including the §8 experiment tables (minutes).
test-full:
	$(GO) test ./...

# Race-detector pass over the fast suite (CheckParallel, obs sinks).
race:
	$(GO) test -race -short ./...

# Formatting + static checks; fails when any file needs gofmt.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# The Figure 4a–4d benchmark harness.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the evaluation tables (small+medium; add -large manually)
# plus the machine-readable BENCH_experiments.json artifact.
experiments:
	$(GO) run ./cmd/jinjing-experiments -json BENCH_experiments.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/isolation

clean:
	$(GO) clean ./...

# Jinjing reproduction — common development targets.

GO ?= go

.PHONY: all build test test-full race fuzz fuzz-backends fuzz-snapshots faults daemon-test daemon-chaos lint bench bench-check bench-shard experiments examples vet fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Default suite: vet, the fast (-short) tier, then a race-detector pass
# over the concurrency-bearing packages (worker pool, parallel fix, obs
# sinks). Stays well under the ~9 min full-suite budget.
test: vet
	$(GO) test -short ./...
	$(GO) test -race -short ./internal/core ./internal/sat ./internal/smt

# Full suite: everything, including the §8 experiment tables with the
# large WAN (tens of minutes on a single-core machine).
test-full:
	JINJING_EXPERIMENTS_LARGE=1 $(GO) test -timeout 30m ./...

# Race-detector pass over the fast suite (CheckParallel, obs sinks).
race:
	$(GO) test -race -short ./...

# Bounded differential-fuzz corpus: the full (non-short) randomized
# harness pinning Check == CheckParallel(k) == monolithic, plus the
# sequential-vs-parallel fix agreement corpus.
fuzz:
	$(GO) test -count=1 -run 'TestFuzz|TestFixParallelMatchesSequential' ./internal/core

# Three-way backend lane: the fixed 160-case differential corpus
# (forced SAT vs forced pset vs auto-parallel vs monolithic, witness
# replay included), then 30 seconds of open-ended native fuzzing over
# random networks, edits, and option toggles.
fuzz-backends:
	$(GO) test -count=1 -run TestFuzzBackendThreeWay ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzBackendAgreement -fuzztime 30s ./internal/core

# Snapshot-codec lane: the committed corpus plus the structured
# mutation sweep (flags, lengths, pair refs, checksum, truncation) and
# 30 seconds of open-ended native fuzzing over Decode — every accepted
# input must round-trip byte-identically through Encode.
fuzz-snapshots:
	$(GO) test -count=1 -run 'TestSnapshotRestoreMutationSweep|TestFuzzSnapshotEditSequences' ./internal/store ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzSnapshotRestore -fuzztime 30s ./internal/store

# Fault-injection lane: every TestFault* scenario (solver timeouts,
# transient faults, worker panics, pool collapse, deadline
# cancellation, snapshot write/restore crashes) under the race
# detector. The faultinject registry is process-global, so these tests
# never run in parallel with each other.
faults:
	$(GO) test -race -short -count=1 -run 'TestFault' ./internal/core ./internal/faultinject ./internal/store ./internal/serve

# jinjingd daemon lane: the end-to-end warm-session suite (including
# the warm-daemon vs cold-CLI byte-identity check, which builds the
# jinjing binary — hence no -short), the concurrency/admission tests,
# the restart-recovery suite, and the serve.job fault scenarios, all
# under the race detector.
daemon-test:
	$(GO) test -race -count=1 ./internal/serve ./internal/obs/serve

# jinjingd chaos lane: crash-and-restart cycles under the race
# detector — kill-during-snapshot, kill-during-drain, and repeated
# crash/restore loops driven by the store fault-injection sites.
daemon-chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/serve

# Formatting + static checks; fails when any file needs gofmt.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# The Figure 4a–4d benchmark harness.
bench:
	$(GO) test -bench=. -benchmem ./...

# Bench regression gate: rerun the incremental, shard, and backend
# figures (medium size) and fail if a speedup (or sharding-overhead)
# ratio regresses >25% against the committed BENCH_incremental.json /
# BENCH_shard.json / BENCH_backend.json baselines or the
# identical-output invariant breaks. Part of the weekly CI lane.
bench-check:
	JINJING_BENCH_CHECK=1 $(GO) test -count=1 -v -run TestBenchCheck ./internal/experiments

# Regenerate the shard-scaling baseline (BENCH_shard.json): the full
# small→xlarge grid with the xlarge tier opted in. The xlarge
# monolithic arm is the multi-minute, memory-heavy cell the figure
# exists to demonstrate against — budget several minutes.
bench-shard:
	JINJING_EXPERIMENTS_LARGE=1 $(GO) run ./cmd/jinjing-experiments \
		-figures shard -large -json BENCH_shard.json

# Regenerate the evaluation tables (small+medium; add -large manually)
# plus the machine-readable BENCH_experiments.json artifact.
experiments:
	$(GO) run ./cmd/jinjing-experiments -json BENCH_experiments.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/isolation

clean:
	$(GO) clean ./...

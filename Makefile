# Jinjing reproduction — common development targets.

GO ?= go

.PHONY: all build test test-full bench experiments examples vet fmt clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fast suite: unit + property tests, no evaluation tables.
test:
	$(GO) test -short ./...

# Full suite: everything, including the §8 experiment tables (minutes).
test-full:
	$(GO) test ./...

# The Figure 4a–4d benchmark harness.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the evaluation tables (small+medium; add -large manually).
experiments:
	$(GO) run ./cmd/jinjing-experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/migration
	$(GO) run ./examples/isolation

clean:
	$(GO) clean ./...

// Command jinjing-netgen emits a synthetic layered WAN (the evaluation
// substrate of internal/netgen) as topology JSON, optionally alongside a
// perturbed post-update snapshot, for use with cmd/jinjing.
//
// Usage:
//
//	jinjing-netgen -size medium -seed 7 -out net.json
//	jinjing-netgen -size medium -seed 7 -perturb 3 -out net-after.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"jinjing/internal/netgen"
)

func main() {
	var (
		sizeName = flag.String("size", "small", "network scale: small, medium, or large")
		seed     = flag.Int64("seed", 42, "generator seed")
		perturb  = flag.Float64("perturb", 0, "percentage of ACL rules to perturb (emits the post-update snapshot)")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var size netgen.Size
	switch *sizeName {
	case "small":
		size = netgen.Small
	case "medium":
		size = netgen.Medium
	case "large":
		size = netgen.Large
	default:
		fmt.Fprintf(os.Stderr, "jinjing-netgen: unknown size %q\n", *sizeName)
		os.Exit(2)
	}

	w := netgen.Build(netgen.DefaultConfig(size, *seed))
	net := w.Net
	if *perturb > 0 {
		net = w.Perturb(*seed+1, *perturb)
	}
	data, err := json.Marshal(net)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jinjing-netgen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')

	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "jinjing-netgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d devices, %d announced prefixes\n",
		*out, len(net.Devices), len(w.AllPrefixes()))
}

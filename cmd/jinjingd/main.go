// Command jinjingd is the warm-session verification daemon: a
// long-lived HTTP/JSON service hosting named sessions, each keeping one
// network's verification engine and cross-run verdict cache warm
// between an operator's edits.
//
// Usage:
//
//	jinjingd [-listen :8080] [-max-inflight 8] [-decision-logs DIR]
//	         [-quota-rate N] [-quota-burst N] [-session-ttl D]
//	         [-max-deadline D] [-max-fec-budget N] [-max-workers N]
//	         [-state-dir DIR] [-snapshot-interval D] [-drain-timeout D]
//
// Walkthrough (see README "Running jinjingd" for full bodies):
//
//	curl -X PUT  localhost:8080/v1/sessions/wan -d @session.json
//	curl -X POST localhost:8080/v1/sessions/wan/check -d '{}'
//	curl -X POST localhost:8080/v1/sessions/wan/check -d @edit.json
//	curl localhost:8080/metrics
//
// The second check runs warm: only FECs whose ACL bindings changed are
// re-solved, the rest replay from the session's verdict cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jinjing/internal/serve"
)

func main() {
	var (
		listen       = flag.String("listen", ":8080", "address to serve the /v1 API and telemetry on")
		maxInFlight  = flag.Int("max-inflight", 8, "concurrent job bound across sessions; past it POSTs get 429 (negative disables)")
		quotaRate    = flag.Float64("quota-rate", 0, "per-tenant admitted jobs per second (0 disables quotas)")
		quotaBurst   = flag.Float64("quota-burst", 0, "per-tenant admission burst (0 defaults to max(1, rate))")
		maxDeadline  = flag.Duration("max-deadline", 0, "ceiling on per-job wall-clock deadlines; jobs without one inherit it (0 = uncapped)")
		maxFECBudget = flag.Int64("max-fec-budget", 0, "ceiling on per-job SAT conflict budgets (0 = uncapped)")
		maxWorkers   = flag.Int("max-workers", 0, "ceiling on per-job worker counts (0 = uncapped)")
		declogDir    = flag.String("decision-logs", "", "directory for per-session decision ledgers (<dir>/<session>.jsonl)")
		sessionTTL   = flag.Duration("session-ttl", 0, "release a session's warm solver state after this much idle time; the session and its verdict cache stay loaded (0 disables)")
		stateDir     = flag.String("state-dir", "", "directory for durable session state: manifests and verdict-cache snapshots survive restarts (empty disables)")
		snapInterval = flag.Duration("snapshot-interval", 0, "cadence of the periodic verdict-cache snapshot pass when -state-dir is set (0 = 30s default, negative disables)")
		drainTimeout = flag.Duration("drain-timeout", 0, "how long shutdown waits for in-flight jobs before closing (0 = 10s default, negative skips the wait)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "jinjingd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *declogDir != "" {
		if err := os.MkdirAll(*declogDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "jinjingd: %v\n", err)
			os.Exit(1)
		}
	}

	srv := serve.New(serve.Config{
		MaxInFlight:      *maxInFlight,
		Quota:            serve.Quota{Rate: *quotaRate, Burst: *quotaBurst},
		MaxDeadline:      *maxDeadline,
		MaxPerFECBudget:  *maxFECBudget,
		MaxWorkers:       *maxWorkers,
		DecisionLogDir:   *declogDir,
		SessionTTL:       *sessionTTL,
		StateDir:         *stateDir,
		SnapshotInterval: *snapInterval,
		DrainTimeout:     *drainTimeout,
	})
	// Install the handler before announcing the address: a supervisor
	// that SIGTERMs the moment it sees "serving on" must hit the drain
	// path, not the default disposition.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jinjingd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "jinjingd: serving on %s\n", addr)
	<-sig
	fmt.Fprintln(os.Stderr, "jinjingd: draining for shutdown (signal again to force exit)")
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "jinjingd: shutdown: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		// A second signal aborts the drain: the operator wants out now.
		// Durable sessions fall back on their last committed snapshot.
		fmt.Fprintln(os.Stderr, "jinjingd: second signal, forcing exit")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "jinjingd: stopped after %v drain\n", time.Since(start).Round(time.Millisecond))
}

// Command jinjing runs an LAI program against a network.
//
// Usage:
//
//	jinjing -topo net.json -program update.lai [-updated net-after.json]
//	jinjing -configs confdir -links links.json -program update.lai
//
// The network comes either from a topology file in the JSON schema of
// internal/topo (see cmd/jinjing-netgen to generate one), or from a
// directory of Cisco-IOS-style device configurations (*.cfg, see
// internal/ciscoconf) plus a JSON cable plan:
//
//	[{"from": "G:d1", "to": "R1:u"}, {"from": "R1:u", "to": "G:d1"}]
//
// The LAI program expresses the update intent; when it contains
// "modify X to X'" statements taking ACLs from a hand-written update,
// the -updated snapshot supplies them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"jinjing/internal/acl"
	"jinjing/internal/ciscoconf"
	"jinjing/internal/core"
	"jinjing/internal/lai"
	"jinjing/internal/obs"
	"jinjing/internal/obs/declog"
	"jinjing/internal/obs/serve"
	"jinjing/internal/topo"
)

func main() {
	var (
		topoPath    = flag.String("topo", "", "network topology JSON")
		configsDir  = flag.String("configs", "", "directory of Cisco-IOS-style device configs (*.cfg)")
		linksPath   = flag.String("links", "", "cable plan JSON for -configs")
		programPath = flag.String("program", "", "LAI program file (required)")
		updatedPath = flag.String("updated", "", "post-update network JSON for 'modify X to X'' statements")
		noDiff      = flag.Bool("no-differential", false, "disable the Theorem 4.1 differential-rules optimization")
		noOpt       = flag.Bool("no-optimizations", false, "disable all optimizations (basic Algorithm 1)")
		findAll     = flag.Bool("all-violations", false, "report one violation per forwarding equivalence class")
		emitIOS     = flag.Bool("emit-ios", false, "print fixed/generated ACLs as Cisco-IOS access lists")
		workers     = flag.Int("workers", 1, "parallel workers for check, fix, and generate")
		shards      = flag.Int("shards", 1, "verification shards: FECs are derived and solved one shard at a time with bounded live memory (1 = monolithic); output is identical at any shard count")
		backendName = flag.String("backend", "auto", "per-FEC equivalence backend: auto, sat, or pset (verdicts and output are identical; only cost differs)")
		explain     = flag.Bool("explain", false, "print hop-by-hop decision traces for each violation")

		timeout    = flag.Duration("timeout", 0, "wall-clock deadline per primitive call (0 = none); expired checks report UNDECIDED FECs, fix/generate refuse their plan")
		fecBudget  = flag.Int64("fec-budget", 0, "SAT conflict budget per solver query (0 = unlimited); exhausted queries escalate 4x per retry")
		maxRetries = flag.Int("max-retries", 2, "retries for a budget-exhausted or transiently failed query before its verdict stays unknown")

		tracePath   = flag.String("trace", "", "write a JSONL span trace to this file")
		traceText   = flag.Bool("trace-text", false, "print a human-readable span trace to stderr")
		showMetrics = flag.Bool("metrics", false, "print the metrics registry to stderr after the run")
		progress    = flag.Bool("progress", false, "report N/M progress to stderr during long phases")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")

		decisionLog = flag.String("decision-log", "", "append one JSONL decision record per check/fix/generate to this rotating file")
		listenAddr  = flag.String("listen", "", "serve /metrics, /healthz, /events, and /debug/pprof on this address for the run's lifetime")
		slowFECs    = flag.Int("slow-fecs", 0, "print the N slowest FECs per check to stderr, with their backend route and verdict")
	)
	flag.Parse()
	if (*topoPath == "" && *configsDir == "") || *programPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var net *topo.Network
	var err error
	if *configsDir != "" {
		net, err = loadConfigs(*configsDir, *linksPath)
	} else {
		net, err = loadNetwork(*topoPath)
	}
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	prog, err := lai.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	var opts lai.ResolveOptions
	if *updatedPath != "" {
		updated, err := loadNetwork(*updatedPath)
		if err != nil {
			fatal(err)
		}
		opts.Updated = updated
	}
	resolved, err := lai.Resolve(prog, net, opts)
	if err != nil {
		fatal(err)
	}

	engineOpts := core.DefaultOptions()
	engineOpts.FindAllViolations = *findAll
	engineOpts.Workers = *workers
	if *noDiff || *noOpt {
		engineOpts.UseDifferential = false
	}
	if *noOpt {
		engineOpts = core.Options{FindAllViolations: *findAll, Workers: *workers}
	}
	// Resource limits, sharding, and the backend choice apply in every
	// optimization mode, so set them after the -no-optimizations reset.
	engineOpts.Shards = *shards
	engineOpts.Deadline = *timeout
	engineOpts.PerFECBudget = *fecBudget
	engineOpts.MaxRetries = *maxRetries
	backend, err := core.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	engineOpts.Backend = backend

	observer, ledger, finish, err := setupObservability(obsConfig{
		tracePath:   *tracePath,
		traceText:   *traceText,
		showMetrics: *showMetrics,
		progress:    *progress,
		cpuProfile:  *cpuProfile,
		memProfile:  *memProfile,
		decisionLog: *decisionLog,
		listenAddr:  *listenAddr,
	})
	if err != nil {
		fatal(err)
	}
	engineOpts.Obs = observer
	engineOpts.DecisionLog = ledger
	engineOpts.Forensics = *slowFECs > 0

	report, err := core.Run(resolved, engineOpts)
	if err != nil {
		finish()
		fatal(err)
	}
	report.Print(os.Stdout)
	if *slowFECs > 0 {
		printSlowFECs(os.Stderr, report, *slowFECs)
	}
	if *explain {
		eng := core.FromResolved(resolved, engineOpts)
		for _, c := range report.Checks {
			for _, v := range c.Violations {
				for _, x := range eng.Explain(v) {
					fmt.Print(x)
				}
			}
		}
	}
	if *emitIOS {
		emitIOSPlans(report)
	}
	// Flush traces, metrics, and profiles explicitly: the inconsistent
	// exit below bypasses deferred calls.
	finish()

	// Exit nonzero when a check failed — or could not finish within its
	// limits — and nothing repaired it, so the command composes into
	// automation: an UNDECIDED check must never read as a pass.
	if len(report.Fixes) == 0 && len(report.Generates) == 0 {
		for _, c := range report.Checks {
			if !c.Consistent || !c.Complete {
				os.Exit(1)
			}
		}
	}
}

// obsConfig carries every observability flag into setupObservability.
type obsConfig struct {
	tracePath   string
	traceText   bool
	showMetrics bool
	progress    bool
	cpuProfile  string
	memProfile  string
	decisionLog string
	listenAddr  string
}

// setupObservability builds the observer from the -trace/-metrics/
// -progress/-listen flags, opens the -decision-log ledger, starts the
// -listen stats server, and starts the requested pprof profiles. The
// returned finish func flushes the trace, prints metrics, closes the
// ledger, stops the server, and writes the profiles; call it exactly
// once before exiting (os.Exit bypasses defers). Everything here
// writes to files or stderr only — stdout stays byte-identical to an
// uninstrumented run.
func setupObservability(cfg obsConfig) (*obs.Observer, *declog.Logger, func(), error) {
	var fileSink obs.Sink
	var traceFile *os.File
	switch {
	case cfg.tracePath != "":
		f, err := os.Create(cfg.tracePath)
		if err != nil {
			return nil, nil, nil, err
		}
		traceFile = f
		fileSink = obs.NewJSONLSink(f)
	case cfg.traceText:
		fileSink = obs.NewTextSink(os.Stderr)
	}

	closeEarly := func() {
		if traceFile != nil {
			traceFile.Close()
		}
	}

	var ledger *declog.Logger
	if cfg.decisionLog != "" {
		l, err := declog.Open(cfg.decisionLog, declog.Options{})
		if err != nil {
			closeEarly()
			return nil, nil, nil, err
		}
		ledger = l
	}

	// The -listen hub receives finished spans (alongside any file sink)
	// and progress lines, and the server reads the metrics registry live.
	var hub *serve.Hub
	var server *serve.Server
	sink := fileSink
	if cfg.listenAddr != "" {
		hub = serve.NewHub()
		sink = obs.MultiSink(fileSink, hub)
	}
	var m *obs.Metrics
	if cfg.showMetrics || sink != nil {
		m = obs.NewMetrics()
	}
	var p *obs.Progress
	var progressW io.Writer
	switch {
	case cfg.progress && hub != nil:
		progressW = io.MultiWriter(os.Stderr, hub)
	case cfg.progress:
		progressW = os.Stderr
	case hub != nil:
		progressW = hub
	}
	if progressW != nil {
		p = obs.NewProgress(progressW)
	}
	observer := obs.NewObserver(obs.NewTracer(sink), m, p)

	if cfg.listenAddr != "" {
		server = serve.New(m, hub)
		addr, err := server.Listen(cfg.listenAddr)
		if err != nil {
			if ledger != nil {
				ledger.Close()
			}
			closeEarly()
			return nil, nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "jinjing: listening on %s\n", addr)
	}

	var stopCPU func()
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			if server != nil {
				server.Close()
			}
			if ledger != nil {
				ledger.Close()
			}
			closeEarly()
			return nil, nil, nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			if server != nil {
				server.Close()
			}
			if ledger != nil {
				ledger.Close()
			}
			closeEarly()
			return nil, nil, nil, err
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	finish := func() {
		// Fold a final live-heap sample into the peak gauge so -metrics
		// reports end-of-run memory even when no sharded check sampled it
		// later than its own solve loop.
		if g := observer.Gauge("mem.heap_peak_bytes"); g != nil && g.Value() > 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if int64(ms.HeapAlloc) > g.Value() {
				g.Set(int64(ms.HeapAlloc))
			}
		}
		observer.Flush() // appends the final metrics snapshot to the trace
		if cfg.showMetrics {
			observer.WriteMetrics(os.Stderr)
		}
		if server != nil {
			server.Close() //nolint:errcheck // best-effort shutdown
		}
		if ledger != nil {
			if err := ledger.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "jinjing:", err)
			}
		}
		if traceFile != nil {
			traceFile.Close()
		}
		if stopCPU != nil {
			stopCPU()
		}
		if cfg.memProfile != "" {
			f, err := os.Create(cfg.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jinjing:", err)
				return
			}
			runtime.GC() // materialize final heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jinjing:", err)
			}
			f.Close()
		}
	}
	return observer, ledger, finish, nil
}

// printSlowFECs renders the -slow-fecs table: per check, the k FECs
// with the largest solver time, their resolution route, and verdict.
// Written to stderr so stdout stays pinned to the uninstrumented
// output.
func printSlowFECs(w io.Writer, report *core.Report, k int) {
	for ci, c := range report.Checks {
		fs := make([]core.FECForensics, 0, len(c.Forensics))
		for _, f := range c.Forensics {
			if f.SolveNS > 0 {
				fs = append(fs, f)
			}
		}
		sort.Slice(fs, func(i, j int) bool {
			if fs[i].SolveNS != fs[j].SolveNS {
				return fs[i].SolveNS > fs[j].SolveNS
			}
			return fs[i].FEC < fs[j].FEC
		})
		if len(fs) > k {
			fs = fs[:k]
		}
		fmt.Fprintf(w, "check #%d: %d slowest of %d solved FECs\n", ci+1, len(fs), c.SolvedFECs)
		if len(fs) == 0 {
			continue
		}
		fmt.Fprintf(w, "  %6s  %-12s  %-10s  %s\n", "fec", "route", "verdict", "solve")
		for _, f := range fs {
			fmt.Fprintf(w, "  %6d  %-12s  %-10s  %s\n", f.FEC, f.Route, f.Verdict, fmtNS(f.SolveNS))
		}
	}
}

// fmtNS renders a nanosecond duration compactly (µs under 10ms, ms
// above).
func fmtNS(ns int64) string {
	switch {
	case ns < 10_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}

// loadConfigs assembles a network from a directory of IOS-style device
// configurations and a JSON cable plan.
func loadConfigs(dir, linksPath string) (*topo.Network, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.cfg"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.cfg files in %s", dir)
	}
	sort.Strings(paths)
	var cfgs []*ciscoconf.DeviceConfig
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		cfg, err := ciscoconf.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p, err)
		}
		cfgs = append(cfgs, cfg)
	}
	var links []ciscoconf.Link
	if linksPath != "" {
		data, err := os.ReadFile(linksPath)
		if err != nil {
			return nil, err
		}
		var raw []struct {
			From string `json:"from"`
			To   string `json:"to"`
		}
		if err := json.Unmarshal(data, &raw); err != nil {
			return nil, fmt.Errorf("%s: %v", linksPath, err)
		}
		for _, l := range raw {
			fd, fi, ok1 := cut(l.From)
			td, ti, ok2 := cut(l.To)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("%s: link endpoints must be device:interface", linksPath)
			}
			links = append(links, ciscoconf.Link{
				FromDevice: fd, FromIface: fi, ToDevice: td, ToIface: ti,
			})
		}
	}
	return ciscoconf.BuildNetwork(cfgs, links)
}

func cut(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:], i > 0 && i < len(s)-1
		}
	}
	return "", "", false
}

// emitIOSPlans prints every ACL the plan changed, in IOS syntax, ready
// to paste into device configuration.
func emitIOSPlans(report *core.Report) {
	emitted := map[string]bool{}
	emit := func(bindingID string, a *acl.ACL) {
		if a == nil || emitted[bindingID] {
			return
		}
		emitted[bindingID] = true
		name := strings.ToUpper(strings.NewReplacer(":", "-").Replace(bindingID))
		fmt.Printf("\n! %s\n%s", bindingID, ciscoconf.FormatACL("JINJING-"+name, a))
	}
	for _, f := range report.Fixes {
		for _, action := range f.Actions {
			dir := topo.In
			base := action.BindingID
			if strings.HasSuffix(base, ":out") {
				dir = topo.Out
				base = strings.TrimSuffix(base, ":out")
			} else {
				base = strings.TrimSuffix(base, ":in")
			}
			if iface, err := f.Fixed.LookupInterface(base); err == nil {
				emit(action.BindingID, iface.ACL(dir))
			}
		}
	}
	for _, g := range report.Generates {
		ids := make([]string, 0, len(g.ACLs))
		for id := range g.ACLs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			emit(id, g.ACLs[id])
		}
	}
}

func loadNetwork(path string) (*topo.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := topo.NewNetwork()
	if err := json.Unmarshal(data, n); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jinjing:", err)
	os.Exit(2)
}

// Command jinjing-experiments regenerates the paper's evaluation tables
// (Figures 4a-4d and Table 5 of §8) on the synthetic WAN substrate and
// prints them in the format recorded in EXPERIMENTS.md.
//
// Usage:
//
//	jinjing-experiments                 # all figures, small+medium
//	jinjing-experiments -large          # include the large network
//	jinjing-experiments -figures 4a,4d  # a subset
//	jinjing-experiments -json BENCH_experiments.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"jinjing/internal/experiments"
	"jinjing/internal/netgen"
	"jinjing/internal/obs"
)

func main() {
	var (
		large      = flag.Bool("large", false, "include the large network (minutes of runtime)")
		figures    = flag.String("figures", "4a,4b,4c,4d,t5", "comma-separated subset of 4a,4b,4c,4d,par,inc,backend,shard,snap,t5")
		jsonPath   = flag.String("json", "", "also write the rows as JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// A shared metrics registry across every figure: -json embeds its
	// final snapshot, matching what `jinjing -metrics` prints for a run.
	var metrics *obs.Metrics
	if *jsonPath != "" {
		metrics = obs.NewMetrics()
		experiments.Observer = obs.NewObserver(nil, metrics, nil)
	}

	sizes := []netgen.Size{netgen.Small, netgen.Medium}
	if *large {
		sizes = append(sizes, netgen.Large)
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*figures, ",") {
		want[strings.TrimSpace(f)] = true
	}

	var report experiments.BenchReport
	if want["4a"] {
		report.Checks = experiments.Fig4aCheck(sizes)
		experiments.PrintCheckRows(os.Stdout, report.Checks)
		fmt.Println()
	}
	if want["4b"] {
		report.Fixes = experiments.Fig4bFix(sizes, []bool{true, false})
		experiments.PrintFixRows(os.Stdout, report.Fixes)
		rows := []experiments.FixRow{experiments.Fig4bNoExpansion(netgen.Small, 2000)}
		experiments.PrintFixRows(os.Stdout, rows)
		report.Fixes = append(report.Fixes, rows...)
		fmt.Println()
	}
	if want["4c"] {
		// The unoptimized arm is bounded to small/medium: without §5.5
		// grouping and simplification the large network's synthesized
		// rule lists grow into the millions (see EXPERIMENTS.md).
		smallSizes := sizes
		if len(smallSizes) > 2 {
			smallSizes = smallSizes[:2]
		}
		rows := experiments.Fig4cGenerate(smallSizes, []bool{true, false})
		if len(sizes) > 2 {
			rows = append(rows, experiments.Fig4cGenerate(sizes[2:], []bool{true})...)
		}
		experiments.PrintGenerateRows(os.Stdout, "Figure 4c — generate migration plan", rows)
		report.Generates = append(report.Generates, rows...)
		fmt.Println()
	}
	if want["4d"] {
		rows := experiments.Fig4dOpen(sizes, []int{1, 2, 4})
		experiments.PrintGenerateRows(os.Stdout, "Figure 4d — reachability control (open) + generate", rows)
		report.Generates = append(report.Generates, rows...)
		fmt.Println()
	}
	if want["par"] {
		// The parallel-scaling figure skips the small network: its
		// turnaround is microsecond-scale and worker startup dominates.
		parSizes := make([]netgen.Size, 0, len(sizes))
		for _, s := range sizes {
			if s != netgen.Small {
				parSizes = append(parSizes, s)
			}
		}
		report.Parallel = experiments.FigParallelCheck(parSizes, []int{1, 2, 4, 8})
		experiments.PrintParallelRows(os.Stdout, report.Parallel)
		fmt.Println()
	}
	if want["inc"] {
		// Like "par", the incremental figure skips the small network:
		// both arms finish in microseconds there and timer granularity
		// dominates the ratio.
		incSizes := make([]netgen.Size, 0, len(sizes))
		for _, s := range sizes {
			if s != netgen.Small {
				incSizes = append(incSizes, s)
			}
		}
		report.Incremental = experiments.FigIncrementalCheck(incSizes)
		experiments.PrintIncrementalRows(os.Stdout, report.Incremental)
		fmt.Println()
	}
	if want["backend"] {
		// Like "par", the backend figure skips the small network: its
		// turnaround is microsecond-scale and fixed per-call costs
		// dominate either backend's decision time.
		beSizes := make([]netgen.Size, 0, len(sizes))
		for _, s := range sizes {
			if s != netgen.Small {
				beSizes = append(beSizes, s)
			}
		}
		report.Backend = experiments.FigBackendCheck(beSizes)
		experiments.PrintBackendRows(os.Stdout, report.Backend)
		fmt.Println()
	}
	if want["shard"] {
		// The shard figure includes the extrapolated xlarge tier only
		// when the weekly large lane opts in: its monolithic arm is the
		// multi-gigabyte run the figure exists to demonstrate against.
		shardSizes := sizes
		if os.Getenv("JINJING_EXPERIMENTS_LARGE") == "1" {
			shardSizes = append(append([]netgen.Size{}, sizes...), netgen.XLarge)
		}
		report.Shard = experiments.FigShardCheck(shardSizes, []int{1, 4, 16})
		experiments.PrintShardRows(os.Stdout, report.Shard)
		fmt.Println()
	}
	if want["snap"] {
		// Like "inc", the snapshot figure skips the small network: both
		// arms finish in microseconds there and timer granularity
		// dominates the restore-vs-cold ratio.
		snapSizes := make([]netgen.Size, 0, len(sizes))
		for _, s := range sizes {
			if s != netgen.Small {
				snapSizes = append(snapSizes, s)
			}
		}
		report.Snapshot = experiments.FigSnapshotRestore(snapSizes)
		experiments.PrintSnapshotRows(os.Stdout, report.Snapshot)
		fmt.Println()
	}
	if want["t5"] {
		report.Table5 = experiments.Table5Programs(sizes)
		experiments.PrintTable5(os.Stdout, report.Table5)
	}

	if *jsonPath != "" {
		if metrics != nil {
			snap := metrics.Snapshot()
			report.Metrics = &snap
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // materialize final heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jinjing-experiments:", err)
	os.Exit(2)
}

// Command jinjing-experiments regenerates the paper's evaluation tables
// (Figures 4a-4d and Table 5 of §8) on the synthetic WAN substrate and
// prints them in the format recorded in EXPERIMENTS.md.
//
// Usage:
//
//	jinjing-experiments                 # all figures, small+medium
//	jinjing-experiments -large          # include the large network
//	jinjing-experiments -figures 4a,4d  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jinjing/internal/experiments"
	"jinjing/internal/netgen"
)

func main() {
	var (
		large   = flag.Bool("large", false, "include the large network (minutes of runtime)")
		figures = flag.String("figures", "4a,4b,4c,4d,t5", "comma-separated subset of 4a,4b,4c,4d,t5")
	)
	flag.Parse()

	sizes := []netgen.Size{netgen.Small, netgen.Medium}
	if *large {
		sizes = append(sizes, netgen.Large)
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*figures, ",") {
		want[strings.TrimSpace(f)] = true
	}

	if want["4a"] {
		experiments.PrintCheckRows(os.Stdout, experiments.Fig4aCheck(sizes))
		fmt.Println()
	}
	if want["4b"] {
		experiments.PrintFixRows(os.Stdout, experiments.Fig4bFix(sizes, []bool{true, false}))
		rows := []experiments.FixRow{experiments.Fig4bNoExpansion(netgen.Small, 2000)}
		experiments.PrintFixRows(os.Stdout, rows)
		fmt.Println()
	}
	if want["4c"] {
		// The unoptimized arm is bounded to small/medium: without §5.5
		// grouping and simplification the large network's synthesized
		// rule lists grow into the millions (see EXPERIMENTS.md).
		smallSizes := sizes
		if len(smallSizes) > 2 {
			smallSizes = smallSizes[:2]
		}
		rows := experiments.Fig4cGenerate(smallSizes, []bool{true, false})
		if len(sizes) > 2 {
			rows = append(rows, experiments.Fig4cGenerate(sizes[2:], []bool{true})...)
		}
		experiments.PrintGenerateRows(os.Stdout, "Figure 4c — generate migration plan", rows)
		fmt.Println()
	}
	if want["4d"] {
		rows := experiments.Fig4dOpen(sizes, []int{1, 2, 4})
		experiments.PrintGenerateRows(os.Stdout, "Figure 4d — reachability control (open) + generate", rows)
		fmt.Println()
	}
	if want["t5"] {
		experiments.PrintTable5(os.Stdout, experiments.Table5Programs(sizes))
	}
}

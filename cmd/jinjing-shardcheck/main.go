// Command jinjing-shardcheck validates a shard-scaling report
// (BENCH_shard.json or a fresh -figures shard -json run) against the
// invariants the figure exists to pin:
//
//   - every row's check signature matched its size's monolithic row
//     (sharding never changes output), and
//   - the per-size FEC counts agree across shard counts, and
//   - wherever a monolithic row exceeded the heap envelope
//     (monolithic_infeasible), at least one sharded row of the same
//     size fit under it — i.e. sharding actually rescued the size.
//
// Usage:
//
//	jinjing-shardcheck BENCH_shard.json
//
// Exit status 0 when every invariant holds, 1 with a diagnostic per
// violation otherwise. The weekly CI lane runs it on a fresh
// xlarge-inclusive report.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"jinjing/internal/experiments"
	"jinjing/internal/netgen"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jinjing-shardcheck <report.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "jinjing-shardcheck:", err)
		os.Exit(2)
	}
	var report struct {
		Shard []experiments.ShardRow `json:"shard"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintln(os.Stderr, "jinjing-shardcheck:", err)
		os.Exit(2)
	}
	if len(report.Shard) == 0 {
		fmt.Fprintln(os.Stderr, "jinjing-shardcheck: report has no shard rows")
		os.Exit(1)
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "jinjing-shardcheck: "+format+"\n", args...)
		failed = true
	}

	mono := map[netgen.Size]experiments.ShardRow{}
	for _, row := range report.Shard {
		if row.Shards <= 1 {
			mono[row.Size] = row
		}
	}
	rescued := map[netgen.Size]bool{}
	for _, row := range report.Shard {
		if !row.Identical {
			fail("%s/shards=%d: output diverged from the monolithic row", row.Size, row.Shards)
		}
		m, ok := mono[row.Size]
		if !ok {
			fail("%s/shards=%d: no monolithic row for this size", row.Size, row.Shards)
			continue
		}
		if row.FECs != m.FECs || row.SolvedFECs != m.SolvedFECs {
			fail("%s/shards=%d: FEC counts diverged: %d/%d vs monolithic %d/%d",
				row.Size, row.Shards, row.FECs, row.SolvedFECs, m.FECs, m.SolvedFECs)
		}
		if row.Shards > 1 && row.PeakHeapBytes <= experiments.MonolithicHeapEnvelope {
			rescued[row.Size] = true
		}
	}
	flaggedRescued := 0
	for size, m := range mono {
		if !m.MonolithicInfeasible {
			continue
		}
		if !rescued[size] {
			fail("%s: monolithic run exceeded the %d MiB envelope and no sharded run fit under it",
				size, experiments.MonolithicHeapEnvelope>>20)
			continue
		}
		flaggedRescued++
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("jinjing-shardcheck: %d rows ok (identical output, consistent FEC counts", len(report.Shard))
	if flaggedRescued > 0 {
		fmt.Printf(", %d envelope-exceeding size(s) rescued by sharding", flaggedRescued)
	}
	fmt.Println(")")
}

// Command jinjing-sat runs the embedded CDCL SAT solver on a DIMACS CNF
// file — handy for debugging the solver substrate against standard
// instances (and for convincing yourself the engine's oracle is a real
// SAT solver).
//
// Usage:
//
//	jinjing-sat problem.cnf      # prints SATISFIABLE + model, or UNSATISFIABLE
//	jinjing-sat -                # reads stdin
//
// Exit codes follow SAT-competition conventions: 10 = SAT, 20 = UNSAT.
package main

import (
	"fmt"
	"io"
	"os"

	"jinjing/internal/sat"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: jinjing-sat <file.cnf|->")
		os.Exit(2)
	}
	var r io.Reader
	if os.Args[1] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "jinjing-sat:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	s, numVars, err := sat.LoadDIMACS(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jinjing-sat:", err)
		os.Exit(2)
	}
	if s.Solve() {
		fmt.Println("s SATISFIABLE")
		if err := s.WriteDIMACSModel(os.Stdout, numVars); err != nil {
			fmt.Fprintln(os.Stderr, "jinjing-sat:", err)
			os.Exit(2)
		}
		stats := s.Stats
		fmt.Printf("c decisions=%d propagations=%d conflicts=%d restarts=%d\n",
			stats.Decisions, stats.Propagations, stats.Conflicts, stats.Restarts)
		os.Exit(10)
	}
	fmt.Println("s UNSATISFIABLE")
	os.Exit(20)
}
